"""Execution-kernel equivalence and unit tests (loop / block / compiled).

Every kernel's contract is *bit-for-bit* equivalence with the
sequential reference loop: same final opinions, same step count, same
stop reason, same observer sequences, for any seed.  The sweep below
exercises that contract across graphs × dynamics × schedulers × stop
conditions × observers for both the block and the compiled backend
(the latter through its interpreted core, so the sweep runs without
numba); the unit tests pin down the conflict-free segment splitter and
the batched state operations the kernels rely on.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core import (
    AdversarialScheduler,
    BiasedScheduler,
    ChurnPlan,
    EdgeScheduler,
    IncrementalVoting,
    MedianVoting,
    NoisyDynamics,
    OpinionState,
    PullVoting,
    PushVoting,
    Substrate,
    VertexScheduler,
    frozen_consensus,
    run_dynamics,
)
from repro.core.kernels import (
    BlockKernel,
    CompiledKernel,
    KERNEL_NAMES,
    LoopKernel,
    NUMBA_AVAILABLE,
    active_kernel,
    compiled_runtime_available,
    conflict_free_bounds,
    interpreted_compiled,
    make_kernel,
    resolve_kernel,
    supports_block,
    supports_compiled,
    use_kernel,
)
from repro.core.observers import ChangeLog, SupportTrace, TraceBuffer, WeightTrace
from repro.core.stopping import (
    first_of,
    never,
    range_at_most,
    support_at_most,
    two_adjacent,
)
from repro.errors import ProcessError
from repro.graphs import complete_graph, random_regular_graph
from repro.rng import make_rng


def initial_state(graph, seed, k=6):
    opinions = make_rng(seed).integers(0, k, size=graph.n)
    return OpinionState(graph, opinions)


#: Non-reference kernels the sweep compares against "loop".  The
#: compiled kernel runs through :func:`interpreted_compiled`, so its
#: control flow is covered bit-for-bit even without numba (with numba
#: installed the jitted core is the same function, machine-compiled).
SWEEP_KERNELS = ("loop", "block", "compiled")


def run_pair(graph, dynamics, scheduler_cls, *, stop, seed, observers=(), **kw):
    """Run the same configuration under every kernel; return all results
    plus the observer sets for sequence comparison."""
    results, observer_sets = [], []
    with interpreted_compiled():
        for kernel in SWEEP_KERNELS:
            state = initial_state(graph, seed)
            obs = [factory() for factory in observers]
            result = run_dynamics(
                state,
                scheduler_cls(graph),
                dynamics,
                stop=stop,
                rng=seed + 1,
                observers=obs,
                kernel=kernel,
                **kw,
            )
            results.append(result)
            observer_sets.append(obs)
    return results, observer_sets


def _observable_state(observer):
    return {
        key: val
        for key, val in vars(observer).items()
        if isinstance(val, (list, TraceBuffer))
    }


def assert_equivalent(results, observer_sets):
    loop = results[0]
    for other in results[1:]:
        assert other.steps == loop.steps
        assert other.stop_reason == loop.stop_reason
        np.testing.assert_array_equal(other.state.values, loop.state.values)
        other.state.check_consistency()
    for observers in zip(*observer_sets):
        reference = _observable_state(observers[0])
        for other in observers[1:]:
            assert _observable_state(other) == reference


GRAPHS = [
    pytest.param(lambda: complete_graph(17), id="complete17"),
    pytest.param(lambda: random_regular_graph(26, 5, rng=3), id="regular26"),
]
DYNAMICS = [
    pytest.param(IncrementalVoting, id="div"),
    pytest.param(PullVoting, id="pull"),
    pytest.param(PushVoting, id="push"),
    pytest.param(MedianVoting, id="median"),
]
SCHEDULERS = [
    pytest.param(VertexScheduler, id="vertex"),
    pytest.param(EdgeScheduler, id="edge"),
]


class TestEquivalenceSweep:
    @pytest.mark.parametrize("graph_factory", GRAPHS)
    @pytest.mark.parametrize("dynamics_cls", DYNAMICS)
    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_consensus_runs_bit_identical(
        self, graph_factory, dynamics_cls, scheduler_cls, seed
    ):
        results, observers = run_pair(
            graph_factory(),
            dynamics_cls(),
            scheduler_cls,
            stop="consensus",
            seed=seed,
        )
        assert_equivalent(results, observers)

    @pytest.mark.parametrize(
        "stop",
        [
            pytest.param(two_adjacent, id="two_adjacent"),
            pytest.param(support_at_most(2), id="support_at_most2"),
            pytest.param(range_at_most(1), id="range_at_most1"),
            pytest.param(
                first_of(support_at_most(3), range_at_most(2)), id="first_of"
            ),
        ],
    )
    @pytest.mark.parametrize("seed", [0, 7])
    def test_stop_conditions_fire_at_same_step(self, stop, seed):
        results, observers = run_pair(
            complete_graph(19),
            IncrementalVoting(),
            VertexScheduler,
            stop=stop,
            seed=seed,
        )
        assert_equivalent(results, observers)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_never_with_max_steps(self, seed):
        results, observers = run_pair(
            complete_graph(15),
            IncrementalVoting(),
            VertexScheduler,
            stop=never,
            seed=seed,
            max_steps=173,
        )
        assert_equivalent(results, observers)
        assert results[0].steps == 173
        assert not results[1].reached_stop

    @pytest.mark.parametrize("seed", [0, 3])
    def test_sampled_observers_identical(self, seed):
        results, observers = run_pair(
            complete_graph(21),
            IncrementalVoting(),
            EdgeScheduler,
            stop="consensus",
            seed=seed,
            observers=(
                lambda: WeightTrace("vertex", interval=7),
                lambda: SupportTrace(interval=13),
            ),
        )
        assert_equivalent(results, observers)
        assert observers[0][0].steps  # the trace actually sampled

    @pytest.mark.parametrize("seed", [0, 9])
    def test_change_observers_force_exact_replay(self, seed):
        """ChangeLog sees every (step, v, w, values) tuple identically —
        the block kernel degrades to per-change replay for these."""
        results, observers = run_pair(
            complete_graph(14),
            PullVoting(),
            VertexScheduler,
            stop="consensus",
            seed=seed,
            observers=(ChangeLog, lambda: WeightTrace("edge", interval=11)),
        )
        assert_equivalent(results, observers)
        assert observers[0][0].entries == observers[1][0].entries

    def test_small_block_size_hits_segment_boundaries(self):
        results, observers = run_pair(
            complete_graph(13),
            IncrementalVoting(),
            VertexScheduler,
            stop="consensus",
            seed=4,
            block_size=3,
        )
        assert_equivalent(results, observers)


#: Scenario matrix for the substrate-contract sweep: every scenario is
#: run under every kernel and must either match the loop reference
#: bit-for-bit or record an explicit degradation on ``RunResult.kernel``.
SCENARIOS = (
    "churn",
    "zealots",
    "churn_zealots",
    "bias",
    "adversarial",
    "noise",
)


def run_scenario(scenario, kernel, seed):
    """Build a fresh substrate/state/scheduler (substrates mutate in
    place, scenario schedulers bind to a live state) and run one
    scenario under ``kernel``.  Returns (result, substrate, observers)."""
    graph = random_regular_graph(26, 5, rng=3)
    opinions = make_rng(seed).integers(0, 6, size=graph.n)
    plan = None
    if scenario in ("churn", "churn_zealots"):
        plan = ChurnPlan(period=150, swaps=8, seed=seed + 11)
    substrate = Substrate(graph, plan)
    frozen = [0, 13] if scenario in ("zealots", "churn_zealots") else None
    state = OpinionState(graph, opinions, frozen=frozen)
    stop = frozen_consensus(state) if frozen else "consensus"
    if scenario == "bias":
        scheduler = BiasedScheduler(substrate, state, bias=1.5)
    elif scenario == "adversarial":
        scheduler = AdversarialScheduler(substrate, state, strength=0.4)
    else:
        scheduler = VertexScheduler(substrate)
    dynamics = IncrementalVoting()
    if scenario == "noise":
        dynamics = NoisyDynamics(dynamics, drop=0.2, misread=0.15)
    observers = [SupportTrace(interval=13)]
    result = run_dynamics(
        state,
        scheduler,
        dynamics,
        stop=stop,
        rng=seed + 1,
        max_steps=300_000,
        observers=observers,
        kernel=kernel,
    )
    return result, substrate, observers


class TestScenarioEquivalenceSweep:
    """{churn, zealots, bias, noise} × {loop, block, compiled}: the
    kernel contract extends to non-static substrates.  Identical
    outcomes everywhere — except :class:`NoisyDynamics`, which does not
    declare substrate compatibility and must *record* its degradation
    to the loop kernel rather than silently diverge."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("seed", [0, 4])
    def test_scenarios_bit_identical_across_kernels(self, scenario, seed):
        results, observer_sets = [], []
        with interpreted_compiled():
            for kernel in SWEEP_KERNELS:
                result, substrate, observers = run_scenario(
                    scenario, kernel, seed
                )
                results.append(result)
                observer_sets.append([observers[0]])
                if scenario in ("churn", "churn_zealots"):
                    # The run really crossed epoch boundaries; the
                    # caches were rebuilt, not just never invalidated.
                    assert substrate.epoch > 0
        assert_equivalent(results, observer_sets)
        if scenario == "noise":
            # NoisyDynamics offers no fast path and declares no
            # substrate compatibility: every kernel request degrades
            # to the sequential loop — and says so on the result.
            assert {r.kernel for r in results} == {"loop"}
        else:
            # DIV declares ("frozen", "churn"): the fast backends stay
            # engaged even with zealots and a rewiring substrate.
            assert [r.kernel for r in results] == list(SWEEP_KERNELS)

    @pytest.mark.parametrize("scenario", ["zealots", "churn_zealots"])
    def test_zealot_runs_stop_at_frozen_floor(self, scenario):
        with interpreted_compiled():
            result, _, _ = run_scenario(scenario, "block", seed=2)
        assert result.reached_stop
        support = result.state.frozen_support()
        assert result.state.support_size == len(set(support))
        for vertex in (0, 13):
            assert result.state.is_frozen(vertex)

    @pytest.mark.parametrize("seed", [0, 4])
    def test_scenario_scheduler_at_zero_matches_vertex_process(self, seed):
        """bias=0 / strength=0 consume the engine stream exactly like
        the plain vertex process — the equivalence anchor that lets the
        scenario sweep piggyback on the main sweep's guarantees."""
        graph = random_regular_graph(26, 5, rng=3)
        outcomes = []
        with interpreted_compiled():
            for build in (
                lambda st: VertexScheduler(graph),
                lambda st: BiasedScheduler(graph, st, bias=0.0),
                lambda st: AdversarialScheduler(graph, st, strength=0.0),
            ):
                state = initial_state(graph, seed)
                result = run_dynamics(
                    state,
                    build(state),
                    IncrementalVoting(),
                    rng=seed + 1,
                    kernel="compiled",
                )
                outcomes.append(result)
        reference = outcomes[0]
        for other in outcomes[1:]:
            assert other.steps == reference.steps
            np.testing.assert_array_equal(
                other.state.values, reference.state.values
            )


class TestConflictFreeBounds:
    def test_no_conflicts_single_segment(self):
        v = np.array([0, 1, 2, 3])
        w = np.array([4, 5, 6, 7])
        assert conflict_free_bounds(v, w) == [0, 4]

    def test_split_at_repeated_updater(self):
        v = np.array([0, 1, 2, 0, 3])
        w = np.array([4, 5, 6, 7, 8])
        assert conflict_free_bounds(v, w) == [0, 3, 5]

    def test_split_at_updater_observed_earlier(self):
        # pair 2 updates vertex 5, which pair 1 observed.
        v = np.array([0, 1, 5])
        w = np.array([4, 5, 6])
        assert conflict_free_bounds(v, w) == [0, 2, 3]

    def test_single_self_pair_is_not_a_conflict(self):
        assert conflict_free_bounds(np.array([3]), np.array([3])) == [0, 1]

    def test_repeated_self_pair_splits(self):
        v = np.array([3, 3])
        w = np.array([3, 3])
        assert conflict_free_bounds(v, w) == [0, 1, 2]

    def test_full_conflict_block_degenerates_to_singletons(self):
        v = np.array([2, 2, 2, 2])
        w = np.array([9, 9, 9, 9])
        assert conflict_free_bounds(v, w) == [0, 1, 2, 3, 4]

    def test_empty_block(self):
        empty = np.array([], dtype=np.int64)
        assert conflict_free_bounds(empty, empty) == [0]

    def test_segments_are_internally_conflict_free(self):
        rng = make_rng(11)
        v = rng.integers(0, 12, size=200)
        w = rng.integers(0, 12, size=200)
        bounds = conflict_free_bounds(v, w)
        assert bounds[0] == 0 and bounds[-1] == 200
        assert bounds == sorted(set(bounds))
        for start, end in zip(bounds, bounds[1:]):
            touched = []
            for i in range(start, end):
                # within a segment no vertex may repeat, except that a
                # pair's own v==w coincidence is harmless.
                pair = {int(v[i]), int(w[i])}
                assert not pair & set(touched)
                touched.extend(pair)


class TestBatchedStateOps:
    def _random_batch(self, state, size, seed):
        rng = make_rng(seed)
        vertices = rng.permutation(state.graph.n)[:size]
        new_values = state.values[vertices] + rng.integers(-1, 2, size=size)
        lo, hi = state.values.min(), state.values.max()
        new_values = np.clip(new_values, lo, hi)
        changed = new_values != state.values[vertices]
        return vertices[changed], new_values[changed]

    def test_apply_block_matches_scalar_apply(self):
        graph = random_regular_graph(30, 4, rng=2)
        scalar = initial_state(graph, 8)
        batched = initial_state(graph, 8)
        vertices, new_values = self._random_batch(scalar, 12, seed=21)
        for vertex, value in zip(vertices, new_values):
            scalar.apply(int(vertex), int(value))
        old = batched.apply_block(vertices, new_values)
        np.testing.assert_array_equal(batched.values, scalar.values)
        np.testing.assert_array_equal(
            old, initial_state(graph, 8).values[vertices]
        )
        batched.check_consistency()
        assert batched.support_size == scalar.support_size

    def test_support_range_timeline_matches_replay(self):
        graph = complete_graph(25)
        state = initial_state(graph, 13)
        vertices, new_values = self._random_batch(state, 10, seed=5)
        old_values = state.values[vertices]
        supports, widths = state.support_range_timeline(old_values, new_values)
        replay = state  # timeline must not have mutated the state
        for i, (vertex, value) in enumerate(zip(vertices, new_values)):
            replay.apply(int(vertex), int(value))
            assert supports[i] == replay.support_size
            assert widths[i] == replay.max_opinion - replay.min_opinion


class TestKernelSelection:
    def test_kernel_names(self):
        assert KERNEL_NAMES == ("auto", "block", "compiled", "loop")

    def test_make_kernel(self):
        assert isinstance(make_kernel("loop"), LoopKernel)
        assert isinstance(make_kernel("block"), BlockKernel)
        assert isinstance(make_kernel("compiled"), CompiledKernel)
        with pytest.raises(ProcessError):
            make_kernel("vectorised")

    def test_supports_block(self):
        assert supports_block(IncrementalVoting())
        assert not supports_block(MedianVoting())

    def test_supports_compiled(self):
        assert supports_compiled(IncrementalVoting())
        assert supports_compiled(PullVoting())
        assert supports_compiled(PushVoting())
        assert not supports_compiled(MedianVoting())

    def test_auto_resolves_by_dynamics(self):
        assert resolve_kernel("auto", IncrementalVoting()).name == "block"
        assert resolve_kernel("auto", MedianVoting()).name == "loop"

    def test_block_falls_back_without_step_block(self):
        assert resolve_kernel("block", MedianVoting()).name == "loop"

    def test_compiled_falls_back_without_numba(self, monkeypatch):
        # Without an importable numba the compiled backend must degrade
        # to the block kernel (then the loop, for non-block dynamics)
        # so dependency-free environments keep working.
        monkeypatch.setattr(
            "repro.core.kernels.compiled.NUMBA_AVAILABLE", False
        )
        assert not compiled_runtime_available()
        assert resolve_kernel("compiled", IncrementalVoting()).name == "block"
        assert resolve_kernel("compiled", MedianVoting()).name == "loop"

    def test_interpreted_compiled_forces_backend(self):
        with interpreted_compiled():
            assert compiled_runtime_available()
            assert (
                resolve_kernel("compiled", IncrementalVoting()).name
                == "compiled"
            )
        assert compiled_runtime_available() == NUMBA_AVAILABLE

    def test_compiled_falls_back_without_compiled_id(self):
        with interpreted_compiled():
            assert resolve_kernel("compiled", MedianVoting()).name == "loop"

    def test_explicit_loop_wins_over_heuristic(self):
        assert resolve_kernel("loop", IncrementalVoting()).name == "loop"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ProcessError):
            resolve_kernel("simd", IncrementalVoting())

    def test_use_kernel_overrides_auto(self):
        assert active_kernel() is None
        with use_kernel("loop"):
            assert active_kernel() == "loop"
            assert resolve_kernel("auto", IncrementalVoting()).name == "loop"
            with use_kernel("block"):
                assert active_kernel() == "block"
            assert active_kernel() == "loop"
        assert active_kernel() is None

    def test_use_kernel_none_is_passthrough(self):
        with use_kernel(None):
            assert active_kernel() is None

    def test_use_kernel_rejects_unknown(self):
        with pytest.raises(ProcessError):
            with use_kernel("simd"):
                pass  # pragma: no cover

    def test_result_records_resolved_kernel(self):
        graph = complete_graph(10)
        for kernel, expected in (("auto", "block"), ("loop", "loop")):
            result = run_dynamics(
                initial_state(graph, 1),
                VertexScheduler(graph),
                IncrementalVoting(),
                rng=2,
                kernel=kernel,
            )
            assert result.kernel == expected

    def test_fallback_recorded_on_result(self):
        graph = complete_graph(10)
        result = run_dynamics(
            initial_state(graph, 1),
            VertexScheduler(graph),
            MedianVoting(),
            rng=2,
            kernel="block",
        )
        assert result.kernel == "loop"

    def test_compiled_fallback_recorded_on_result(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.kernels.compiled.NUMBA_AVAILABLE", False
        )
        graph = complete_graph(10)
        result = run_dynamics(
            initial_state(graph, 1),
            VertexScheduler(graph),
            IncrementalVoting(),
            rng=2,
            kernel="compiled",
        )
        assert result.kernel == "block"


class TestCompiledKernel:
    def test_result_records_compiled(self):
        graph = complete_graph(12)
        with interpreted_compiled():
            result = run_dynamics(
                initial_state(graph, 3),
                VertexScheduler(graph),
                IncrementalVoting(),
                rng=4,
                kernel="compiled",
            )
        assert result.kernel == "compiled"

    def test_change_observer_delegates_to_block(self):
        # Change observers need the live state after every change; the
        # compiled kernel hands such runs to the (exact) block kernel
        # and the result must name the backend that actually ran.
        graph = complete_graph(12)
        log = ChangeLog()
        with interpreted_compiled():
            result = run_dynamics(
                initial_state(graph, 3),
                VertexScheduler(graph),
                IncrementalVoting(),
                rng=4,
                kernel="compiled",
                observers=[log],
            )
        assert result.kernel == "block"
        assert log.entries

    def test_opaque_stop_delegates_to_block(self):
        graph = complete_graph(12)

        def opaque(state):
            return "shrunk" if state.support_size <= 2 else None

        with interpreted_compiled():
            result = run_dynamics(
                initial_state(graph, 3),
                VertexScheduler(graph),
                IncrementalVoting(),
                stop=opaque,
                rng=4,
                max_steps=10**6,
                kernel="compiled",
            )
        assert result.kernel == "block"
        assert result.stop_reason == "shrunk"

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_jitted_core_matches_loop(self):
        # With numba present the real machine-code core must still be
        # bit-for-bit identical (the sweep above covers the interpreted
        # twin everywhere).
        graph = random_regular_graph(64, 6, rng=1)
        reference = run_dynamics(
            initial_state(graph, 5),
            VertexScheduler(graph),
            IncrementalVoting(),
            rng=6,
            kernel="loop",
        )
        compiled = run_dynamics(
            initial_state(graph, 5),
            VertexScheduler(graph),
            IncrementalVoting(),
            rng=6,
            kernel="compiled",
        )
        assert compiled.kernel == "compiled"
        assert compiled.steps == reference.steps
        np.testing.assert_array_equal(
            compiled.state.values, reference.state.values
        )


class TestAllocationRegression:
    def test_batched_hot_path_reuses_scratch(self):
        """apply_block / support_range_timeline settle into zero
        per-window allocation: scratch buffers are identical objects
        across calls and tracemalloc sees no growth once warm."""
        graph = random_regular_graph(200, 6, rng=7)
        state = initial_state(graph, 9)
        rng = make_rng(31)

        def one_window(size=64):
            vertices = rng.permutation(state.graph.n)[:size]
            new_values = np.clip(
                state.values[vertices] + rng.integers(-1, 2, size=size),
                state.values.min(),
                state.values.max(),
            )
            changed = new_values != state.values[vertices]
            vertices, new_values = vertices[changed], new_values[changed]
            if vertices.size == 0:
                return
            state.support_range_timeline(state.values[vertices], new_values)
            state.apply_block(vertices, new_values, defer_weights=True)

        for _ in range(5):  # warm the scratch pool
            one_window()
        warm = {name: id(buf) for name, buf in state._scratch.items()}

        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(20):
            one_window()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()

        assert {name: id(buf) for name, buf in state._scratch.items()} == warm
        state_py = __import__(
            "repro.core.state", fromlist=["__file__"]
        ).__file__
        grown = [
            diff
            for diff in after.compare_to(before, "filename")
            if diff.traceback[0].filename == state_py and diff.size_diff > 0
        ]
        assert sum(d.size_diff for d in grown) < 4096, grown

    def test_trace_buffers_preallocate(self):
        """A long sampled run must not grow one Python object per
        sample: the trace arrays double geometrically instead."""
        trace = SupportTrace(interval=1)
        graph = complete_graph(20)
        state = initial_state(graph, 2)
        for step in range(10_000):
            trace.sample(step, state)
        assert len(trace.steps) == 10_000
        assert trace.steps.capacity < 20_000  # geometric, not per-sample
        assert trace.steps[-1] == 9_999
