"""Tests for the observability layer (`repro.obs`).

Covers the metrics monoid (merge associativity, empty identity),
phase tracing against a hand-built opinion trajectory with
exactly-known transitions, the per-span phase invariant on both
engines, the non-positive observer-interval bugfix, and the CLI
round-trip `run --trace-dir` -> `trace summarize`.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.montecarlo import run_trials
from repro.cli import main
from repro.core import (
    IncrementalVoting,
    OpinionState,
    run_div_complete,
    run_dynamics,
    run_synchronous_div,
)
from repro.core.schedulers import VertexScheduler
from repro.errors import ProcessError, TraceError
from repro.graphs import complete_graph
from repro.obs import (
    EMPTY_SNAPSHOT,
    MetricsRegistry,
    PhaseTraceObserver,
    SpanProfiler,
    Tracer,
    activate,
    active_metrics,
    active_profiler,
    collecting,
    current_tracer,
    iter_trace_records,
    load_trace_dir,
    merge_snapshots,
    profiling,
    summarize_records,
)


def _registry(counters=(), gauges=(), observations=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.inc(name, value)
    for name, value in gauges:
        registry.gauge(name, value)
    for name, value in observations:
        registry.observe(name, value)
    return registry


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("runs")
        registry.inc("runs", 2)
        registry.gauge("workers", 4)
        registry.gauge("workers", 2)
        registry.observe("seconds", 1.0)
        registry.observe("seconds", 3.0)
        snapshot = registry.snapshot()
        assert snapshot.counters["runs"] == 3
        assert snapshot.gauges["workers"] == 2  # last write wins
        hist = snapshot.histograms["seconds"]
        assert hist.count == 2
        assert hist.total == pytest.approx(4.0)
        assert hist.minimum == pytest.approx(1.0)
        assert hist.maximum == pytest.approx(3.0)
        assert hist.mean == pytest.approx(2.0)

    def test_timer_observes_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("tick"):
            pass
        hist = registry.snapshot().histograms["tick"]
        assert hist.count == 1
        assert hist.total >= 0.0

    def test_inactive_by_default(self):
        assert active_metrics() is None
        with collecting() as registry:
            assert active_metrics() is registry
        assert active_metrics() is None


class TestSnapshotMerge:
    def test_empty_is_identity(self):
        snapshot = _registry(
            counters=[("a", 2)], gauges=[("g", 7)], observations=[("h", 0.5)]
        ).snapshot()
        left = merge_snapshots([EMPTY_SNAPSHOT, snapshot])
        right = merge_snapshots([snapshot, EMPTY_SNAPSHOT])
        assert left.to_dict() == snapshot.to_dict()
        assert right.to_dict() == snapshot.to_dict()

    def test_merge_is_associative(self):
        a = _registry(counters=[("x", 1)], observations=[("h", 1.0)]).snapshot()
        b = _registry(counters=[("x", 2), ("y", 5)], observations=[("h", 9.0)]).snapshot()
        c = _registry(gauges=[("g", 3)], observations=[("h", 4.0)]).snapshot()
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left.to_dict() == right.to_dict()
        assert left.counters["x"] == 3
        assert left.histograms["h"].count == 3
        assert left.histograms["h"].maximum == pytest.approx(9.0)

    def test_merge_skips_none(self):
        snapshot = _registry(counters=[("x", 1)]).snapshot()
        merged = merge_snapshots([None, snapshot, None])
        assert merged.counters == {"x": 1}

    def test_absorb_accumulates(self):
        parent = MetricsRegistry()
        parent.inc("x")
        parent.absorb(_registry(counters=[("x", 2)], gauges=[("g", 1)]).snapshot())
        snapshot = parent.snapshot()
        assert snapshot.counters["x"] == 3
        assert snapshot.gauges["g"] == 1


class TestHistogramStddev:
    def test_stddev_matches_numpy_population_stddev(self):
        values = [0.5, 1.25, 3.0, 3.0, 7.5, 0.125]
        registry = MetricsRegistry()
        for value in values:
            registry.observe("h", value)
        hist = registry.snapshot().histograms["h"]
        assert hist.stddev == pytest.approx(float(np.std(values)))

    def test_stddev_is_exact_under_merge(self):
        # The sum-of-squares moment is additive, so a merged histogram's
        # stddev equals the stddev of the pooled observations — not an
        # approximation from per-shard summaries.
        shards = [[1.0, 2.0], [10.0], [0.25, 0.5, 4.0]]
        snapshots = []
        for shard in shards:
            registry = MetricsRegistry()
            for value in shard:
                registry.observe("h", value)
            snapshots.append(registry.snapshot())
        merged = merge_snapshots(snapshots).histograms["h"]
        pooled = [value for shard in shards for value in shard]
        assert merged.stddev == pytest.approx(float(np.std(pooled)))

    def test_empty_and_singleton_stddev(self):
        registry = MetricsRegistry()
        registry.observe("h", 4.2)
        assert registry.snapshot().histograms["h"].stddev == pytest.approx(0.0)

    def test_to_dict_carries_stddev(self):
        registry = MetricsRegistry()
        registry.observe("h", 2.0)
        registry.observe("h", 4.0)
        payload = registry.snapshot().to_dict()
        assert payload["histograms"]["h"]["stddev"] == pytest.approx(1.0)


class TestPhaseTraceObserver:
    def test_hand_built_trajectory(self):
        # Support sizes along a fabricated 30-step run:
        #   [0,12) -> 3 distinct opinions, [12,20) -> 2, [20,30) -> 3,
        #   consensus at step 30.
        obs = PhaseTraceObserver()
        state = lambda support: SimpleNamespace(support_size=support)  # noqa: E731
        obs.sample(0, state(3))
        obs.on_change(5, 0, 1, state(3))  # opinion changed, support did not
        obs.on_change(12, 1, 2, state(2))
        obs.on_change(20, 2, 0, state(3))
        obs.on_change(30, 0, 1, state(1))
        obs.sample(30, state(1))  # final endpoint sample

        assert obs.initial_support == 3
        assert obs.transitions == [(12, 2), (20, 3), (30, 1)]
        phases = obs.phases()
        assert [p["support"] for p in phases] == [3, 2, 1]
        assert [p["steps"] for p in phases] == [22, 8, 0]
        assert sum(p["steps"] for p in phases) == 30

    def test_emit_writes_span_attributes_and_events(self):
        obs = PhaseTraceObserver()
        state = lambda support: SimpleNamespace(support_size=support)  # noqa: E731
        obs.sample(0, state(2))
        obs.on_change(4, 0, 1, state(1))
        obs.sample(4, state(1))

        tracer = Tracer()
        with tracer.span("engine.run") as span:
            obs.emit(span)
        (event, span_record) = tracer.records()
        assert span_record["initial_support"] == 2
        assert span_record["phase_transitions"] == 1
        assert event == {
            "type": "event",
            "span": span_record["id"],
            "name": "phase.transition",
            "step": 4,
            "support": 1,
        }


class TestEnginePhaseInvariant:
    def test_generic_engine_phases_sum_to_steps(self):
        graph = complete_graph(12)
        state = OpinionState(graph, [1, 2, 5] * 4)
        tracer = Tracer()
        with activate(tracer):
            result = run_dynamics(
                state, VertexScheduler(graph), IncrementalVoting(), rng=0
            )
        summary = summarize_records(tracer.records())  # raises on mismatch
        assert summary.engine_spans == 1
        assert summary.total_steps == result.steps
        assert sum(summary.phase_steps.values()) == result.steps
        # The run ends in consensus, so the trace visits support size 1.
        assert 1 in summary.phase_steps

    def test_complete_engine_phases_sum_to_steps(self):
        tracer = Tracer()
        with activate(tracer):
            result = run_div_complete(12, {1: 4, 2: 4, 5: 4}, rng=0)
        summary = summarize_records(tracer.records())
        assert summary.engine_spans == 1
        assert summary.total_steps == result.steps
        (span,) = [r for r in tracer.records() if r.get("name") == "engine.run_complete"]
        assert span["initial_support"] == 3
        assert span["phase_transitions"] == len(
            [r for r in tracer.records() if r.get("name") == "phase.transition"]
        )

    def test_untraced_runs_emit_nothing(self):
        assert current_tracer() is None
        result = run_div_complete(12, {1: 6, 5: 6}, rng=0)
        assert result.steps > 0  # no tracer, no spans, still runs


class TestObserverIntervalValidation:
    def test_generic_engine_rejects_non_positive_interval(self):
        graph = complete_graph(6)
        state = OpinionState(graph, [1, 2, 3, 1, 2, 3])
        bad = SimpleNamespace(interval=0, sample=lambda step, state: None)
        with pytest.raises(ProcessError, match="non-positive sample interval"):
            run_dynamics(
                state,
                VertexScheduler(graph),
                IncrementalVoting(),
                rng=0,
                observers=[bad],
            )

    def test_synchronous_engine_rejects_non_positive_interval(self):
        graph = complete_graph(6)
        bad = SimpleNamespace(interval=-3, sample=lambda step, state: None)
        with pytest.raises(ProcessError, match="non-positive sample interval"):
            run_synchronous_div(graph, [1, 2, 3, 1, 2, 3], rng=0, observers=[bad])


class TestParallelMetrics:
    @staticmethod
    def _trial(index, rng):
        result = run_div_complete(40, {1: 20, 5: 20}, stop="two_adjacent", rng=rng)
        return result.two_adjacent_step

    def test_serial_and_parallel_counters_identical(self):
        with collecting():
            serial = run_trials(8, self._trial, seed=11)
        with collecting():
            parallel = run_trials(8, self._trial, seed=11, workers=2)
        assert serial.outcomes == parallel.outcomes
        assert serial.metrics is not None and parallel.metrics is not None
        assert serial.metrics.counters == parallel.metrics.counters
        assert serial.metrics.counters["engine.runs"] == 8

    def test_no_registry_no_metrics(self):
        batch = run_trials(4, self._trial, seed=11)
        assert batch.metrics is None


class TestTracerRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(path)
        with tracer.span("campaign", experiment="E0") as outer:
            with tracer.span("trial") as inner:
                inner.set(index=0, worker="local", seconds=0.0)
            outer.event("checkpoint.resume", batch=1, cached=3)
        assert tracer.close() == path

        records = iter_trace_records(path)
        assert [r["type"] for r in records] == ["span", "event", "span"]
        trial, event, campaign = records
        assert trial["parent"] == campaign["id"]
        assert event["span"] == campaign["id"]
        assert load_trace_dir(tmp_path) == records

    def test_malformed_line_raises_trace_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\nnot json\n', encoding="utf-8")
        with pytest.raises(TraceError, match="bad.jsonl:2: malformed"):
            iter_trace_records(path)

    def test_record_without_type_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x"}\n', encoding="utf-8")
        with pytest.raises(TraceError, match="missing 'type'"):
            iter_trace_records(path)

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(TraceError, match="no .*jsonl"):
            load_trace_dir(tmp_path)


class TestProfiler:
    def test_profiling_sections(self):
        assert active_profiler() is None
        with profiling() as profiler:
            assert active_profiler() is profiler
            with profiler.section("work"):
                sum(range(1000))
        rendered = profiler.render()
        assert "work" in rendered
        assert profiler.keys == ["work"]

    def test_empty_profiler_renders_placeholder(self):
        assert "(no profiled sections)" in SpanProfiler().render()


class TestCliRoundTrip:
    def test_run_trace_metrics_and_summarize(self, tmp_path, capsys):
        trace_dir = tmp_path / "trace"
        metrics_out = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "run",
                    "E10",
                    "--quick",
                    "--seed",
                    "0",
                    "--trace-dir",
                    str(trace_dir),
                    "--metrics-out",
                    str(metrics_out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        trace_file = trace_dir / "e10.jsonl"
        assert trace_file.is_file()

        # The metrics counters and the trace agree on total work done.
        summary = summarize_records(load_trace_dir(trace_dir))
        metrics = json.loads(metrics_out.read_text(encoding="utf-8"))
        assert metrics["counters"]["engine.steps"] == summary.total_steps
        assert metrics["counters"]["engine.runs"] == summary.engine_spans

        # Engine-span dispersion carries through both surfaces: the
        # summary's moments are internally consistent, and --metrics-out
        # now reports per-histogram stddev.
        assert summary.mean_engine_seconds == pytest.approx(
            summary.total_engine_seconds / summary.engine_spans
        )
        assert summary.stddev_engine_seconds >= 0.0
        run_hist = metrics["histograms"]["engine.run_seconds"]
        assert run_hist["stddev"] is not None and run_hist["stddev"] >= 0.0

        assert main(["trace", "summarize", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "engine run(s)" in out
        assert "ms/run" in out
        assert "|support|" in out
        assert "campaign E10" in out

    def test_summarize_corrupt_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main(["trace", "summarize", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("div-repro: error:")
        assert "malformed trace record" in err

    def test_summarize_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope")]) == 2
        assert "no such trace" in capsys.readouterr().err
