"""Tests for the pluggable executor backends (repro.parallel.executors).

Registry resolution, explicit backend selection through the Monte-Carlo
drivers, and the journal executor's cooperative multi-launcher drain:
serial-equivalence, crash/reclaim recovery, fault injection, and
degradation when no campaign journal is available.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings

import pytest

from repro.analysis.montecarlo import run_trials, run_trials_over
from repro.checkpoint import CheckpointJournal, campaign, diff_journals
from repro.errors import AnalysisError, ExperimentError
from repro.faults import FaultPlan, InjectedAbort
from repro.parallel import LeaseConfig, scan_leases
from repro.parallel.executors import available_executors, resolve_executor


def journal_trial(index, rng):
    return (index, int(rng.integers(0, 1 << 30)))


def parameter_trial(parameter, index, rng):
    return (parameter, index, int(rng.integers(0, 1 << 30)))


def _open_journal(directory):
    journal = CheckpointJournal(directory)
    journal.open(fingerprint="executors-test", resume=True)
    return journal


def _launcher(directory, trials, seed, errors):
    """One cooperative launcher process (fork-started by the tests)."""
    try:
        journal = _open_journal(directory)
        with campaign(
            journal,
            executor="journal",
            lease_config=LeaseConfig.from_ttl(0.5),
        ):
            run_trials(
                trials, journal_trial, seed=seed, workers=2, chunk_size=4
            )
    except BaseException as exc:  # pragma: no cover - failure reporting
        errors.put(repr(exc))


class TestRegistry:
    def test_available_executors(self):
        assert available_executors() == ("journal", "pool", "serial")

    def test_resolve_each_backend(self):
        for name in available_executors():
            assert resolve_executor(name).name == name

    def test_unknown_executor_rejected(self):
        with pytest.raises(AnalysisError, match="unknown executor 'warp'"):
            resolve_executor("warp")

    def test_unknown_executor_rejected_from_driver(self):
        with pytest.raises(AnalysisError, match="unknown executor"):
            run_trials(3, journal_trial, seed=0, executor="warp")


class TestExplicitSelection:
    def test_explicit_serial_routes_through_dispatch(self):
        plain = run_trials(6, journal_trial, seed=3)
        explicit = run_trials(6, journal_trial, seed=3, executor="serial")
        assert explicit.outcomes == plain.outcomes
        assert explicit.executor == "serial"
        assert explicit.timings is not None  # instrumented, unlike plain
        assert explicit.timings.executor == "serial"

    def test_explicit_pool_without_workers(self):
        plain = run_trials(6, journal_trial, seed=3)
        pooled = run_trials(6, journal_trial, seed=3, executor="pool")
        assert pooled.outcomes == plain.outcomes
        assert pooled.executor == "pool"

    def test_session_executor_is_picked_up(self):
        plain = run_trials(5, journal_trial, seed=9)
        with campaign(executor="serial"):
            inherited = run_trials(5, journal_trial, seed=9)
        assert inherited.executor == "serial"
        assert inherited.outcomes == plain.outcomes

    def test_run_trials_over_explicit_executor(self):
        plain = run_trials_over([2, 5], 4, parameter_trial, seed=1)
        explicit = run_trials_over(
            [2, 5], 4, parameter_trial, seed=1, executor="serial"
        )
        for (_, expected), (_, actual) in zip(plain, explicit):
            assert actual.outcomes == expected.outcomes
            assert actual.executor == "serial"
            assert actual.timings.executor == "serial"


class TestJournalDegradation:
    def test_journal_without_campaign_degrades_to_serial(self):
        plain = run_trials(6, journal_trial, seed=3)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = run_trials(6, journal_trial, seed=3, executor="journal")
        assert degraded.outcomes == plain.outcomes
        assert degraded.executor == "journal->serial"
        assert any(
            issubclass(w.category, RuntimeWarning)
            and "journal executor" in str(w.message)
            for w in caught
        )

    def test_journal_without_campaign_degrades_to_pool(self):
        plain = run_trials(6, journal_trial, seed=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            degraded = run_trials(
                6, journal_trial, seed=3, workers=2, executor="journal"
            )
        assert degraded.outcomes == plain.outcomes
        assert degraded.executor == "journal->pool"


class TestJournalExecutor:
    def test_single_launcher_serial_equivalence(self, tmp_path):
        serial = run_trials(20, journal_trial, seed=7)
        ref = _open_journal(tmp_path / "ref")
        with campaign(ref):
            run_trials(20, journal_trial, seed=7)
        journal = _open_journal(tmp_path / "journal")
        with campaign(journal, executor="journal"):
            batch = run_trials(20, journal_trial, seed=7, workers=2)
        assert batch.outcomes == serial.outcomes
        assert batch.executor == "journal"
        assert batch.timings.executor == "journal"
        assert diff_journals(ref, journal) == []
        # Finished campaign holds no leases.
        assert scan_leases(tmp_path / "journal" / "leases") == []

    def test_lease_faults_keep_outcomes_identical(self, tmp_path):
        serial = run_trials(20, journal_trial, seed=7)
        journal = _open_journal(tmp_path / "faulted")
        plan = FaultPlan.parse("lease-steal@2;lease-stale@9;lease-partial@14")
        with campaign(journal, plan, executor="journal"):
            batch = run_trials(
                20, journal_trial, seed=7, workers=2, chunk_size=4
            )
        assert batch.outcomes == serial.outcomes
        assert batch.executor == "journal"

    def test_abort_leaves_lease_and_peer_reclaims(self, tmp_path):
        serial = run_trials(20, journal_trial, seed=7)
        directory = tmp_path / "crashy"
        journal = _open_journal(directory)
        plan = FaultPlan.parse("lease-abort@10")
        lease_config = LeaseConfig.from_ttl(0.2)
        with pytest.raises(InjectedAbort, match="after claiming chunk c8"):
            with campaign(
                journal, plan, executor="journal", lease_config=lease_config
            ):
                run_trials(20, journal_trial, seed=7, chunk_size=4)
        # The dead launcher journaled the chunks before the faulted one
        # and left its claim on chunk c8 behind.
        leftovers = scan_leases(directory / "leases")
        assert [lease.path.name for lease in leftovers] == ["c00000008.lease"]
        time.sleep(0.3)  # let the leftover lease go stale
        with campaign(
            _open_journal(directory),
            executor="journal",
            lease_config=lease_config,
        ):
            resumed = run_trials(20, journal_trial, seed=7, chunk_size=4)
        assert resumed.outcomes == serial.outcomes
        ref = _open_journal(tmp_path / "ref")
        with campaign(ref):
            run_trials(20, journal_trial, seed=7)
        assert diff_journals(ref, journal) == []

    def test_two_concurrent_launchers_drain_one_campaign(self, tmp_path):
        directory = tmp_path / "shared"
        _open_journal(directory)  # create the manifest up front
        context = multiprocessing.get_context("fork")
        errors = context.Queue()
        launchers = [
            context.Process(
                target=_launcher, args=(directory, 40, 5, errors)
            )
            for _ in range(2)
        ]
        for process in launchers:
            process.start()
        for process in launchers:
            process.join(timeout=120)
            assert process.exitcode == 0
        assert errors.empty()
        ref = _open_journal(tmp_path / "ref")
        with campaign(ref):
            serial = run_trials(40, journal_trial, seed=5)
        assert diff_journals(ref, CheckpointJournal(directory)) == []
        assert scan_leases(directory / "leases") == []
        # And a follow-up launcher sees a fully-drained campaign.
        with campaign(_open_journal(directory), executor="journal"):
            resumed = run_trials(40, journal_trial, seed=5)
        assert resumed.outcomes == serial.outcomes


class TestRegistryRunCampaign:
    def test_journal_requires_checkpoint_dir(self):
        from repro.experiments.registry import get_experiment

        with pytest.raises(ExperimentError, match="journal executor"):
            get_experiment("E1").run_campaign(
                "quick", seed=0, executor="journal"
            )

    def test_lease_ttl_requires_journal_executor(self, tmp_path):
        from repro.experiments.registry import get_experiment

        with pytest.raises(ExperimentError, match="lease_ttl only applies"):
            get_experiment("E1").run_campaign(
                "quick",
                seed=0,
                executor="pool",
                lease_ttl=2.0,
                checkpoint_dir=tmp_path,
            )
