"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing correctness checks: they exercise arbitrary
graphs, opinion vectors and update sequences rather than hand-picked
examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IncrementalVoting, OpinionState, VertexScheduler, run_dynamics
from repro.core.dynamics import LoadBalancing, MedianVoting, PullVoting
from repro.core.theory import winning_probabilities
from repro.graphs import Graph
from repro.graphs.spectral import mixing_lemma_bound, second_eigenvalue, walk_spectrum
from repro.rng import make_rng

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def connected_graphs(draw, max_n: int = 12):
    """A small connected graph: a random spanning tree plus extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((parent, v))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges))


@st.composite
def graph_with_opinions(draw, max_n: int = 12, max_k: int = 6):
    graph = draw(connected_graphs(max_n))
    opinions = draw(
        st.lists(
            st.integers(min_value=1, max_value=max_k),
            min_size=graph.n,
            max_size=graph.n,
        )
    )
    return graph, opinions


# ---------------------------------------------------------------------------
# Graph invariants
# ---------------------------------------------------------------------------


class TestGraphProperties:
    @given(connected_graphs())
    def test_handshake_lemma(self, graph):
        assert graph.degrees.sum() == 2 * graph.m

    @given(connected_graphs())
    def test_adjacency_symmetry(self, graph):
        for u, v in graph.edges():
            assert graph.has_edge(u, v)
            assert graph.has_edge(v, u)

    @given(connected_graphs())
    def test_stationary_distribution_normalized(self, graph):
        pi = graph.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)

    @given(connected_graphs())
    def test_walk_spectrum_in_unit_interval(self, graph):
        spectrum = walk_spectrum(graph)
        assert spectrum[0] == pytest.approx(1.0, abs=1e-9)
        assert spectrum[-1] >= -1.0 - 1e-9
        assert second_eigenvalue(graph) <= 1.0 + 1e-9

    @given(connected_graphs(), st.data())
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_expander_mixing_lemma(self, graph, data):
        size_s = data.draw(st.integers(min_value=1, max_value=graph.n))
        size_u = data.draw(st.integers(min_value=1, max_value=graph.n))
        S = list(range(size_s))
        U = list(range(graph.n - size_u, graph.n))
        deviation, bound = mixing_lemma_bound(graph, S, U)
        assert deviation <= bound + 1e-9


# ---------------------------------------------------------------------------
# State invariants
# ---------------------------------------------------------------------------


class TestStateProperties:
    @given(graph_with_opinions(), st.lists(st.tuples(st.integers(0, 11), st.integers(1, 6)), max_size=60))
    @settings(deadline=None)
    def test_aggregates_survive_any_update_sequence(self, graph_opinions, updates):
        graph, opinions = graph_opinions
        state = OpinionState(graph, opinions)
        lo, hi = min(opinions), max(opinions)
        for v, value in updates:
            state.apply(v % graph.n, min(max(value, lo), hi))
        state.check_consistency()

    @given(graph_with_opinions())
    def test_initial_weights_match_definitions(self, graph_opinions):
        graph, opinions = graph_opinions
        state = OpinionState(graph, opinions)
        values = np.asarray(opinions)
        assert state.total_weight("edge") == pytest.approx(values.sum())
        pi = graph.stationary_distribution()
        assert state.total_weight("vertex") == pytest.approx(
            graph.n * float((pi * values).sum())
        )


# ---------------------------------------------------------------------------
# Dynamics invariants
# ---------------------------------------------------------------------------


class TestDynamicsProperties:
    @given(graph_with_opinions(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_div_range_never_expands(self, graph_opinions, seed):
        graph, opinions = graph_opinions
        state = OpinionState(graph, opinions)
        lo0, hi0 = state.min_opinion, state.max_opinion
        rng = make_rng(seed)
        scheduler = VertexScheduler(graph)
        previous_lo, previous_hi = lo0, hi0
        for _ in range(10):
            run_dynamics(
                state, scheduler, IncrementalVoting(),
                stop="never", rng=rng, max_steps=20,
            )
            # The support range is monotone under DIV.
            assert previous_lo <= state.min_opinion
            assert state.max_opinion <= previous_hi
            previous_lo, previous_hi = state.min_opinion, state.max_opinion
        state.check_consistency()

    @given(graph_with_opinions(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_div_expected_weight_change_is_zero(self, graph_opinions, seed):
        """Lemma 3, verified *exactly* by enumerating every interaction.

        For both processes, sums the probability-weighted one-step change
        of the corresponding weight over all (v, w) pairs; it must be 0.
        """
        graph, opinions = graph_opinions
        state = OpinionState(graph, opinions)
        pi = graph.stationary_distribution()
        for process in ("edge", "vertex"):
            drift = 0.0
            for v in range(graph.n):
                neighbors = graph.neighbors(v)
                for w in neighbors:
                    if process == "edge":
                        # v updates w.p. d(v)/2m * 1/d(v) per neighbour.
                        probability = 1.0 / (2 * graph.m)
                        weight_per_unit = 1.0
                    else:
                        probability = 1.0 / (graph.n * neighbors.size)
                        weight_per_unit = graph.n * pi[v]
                    delta = np.sign(state.value(int(w)) - state.value(v))
                    drift += probability * weight_per_unit * delta
            assert drift == pytest.approx(0.0, abs=1e-12)

    @given(graph_with_opinions(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_load_balancing_conserves_sum(self, graph_opinions, seed):
        graph, opinions = graph_opinions
        state = OpinionState(graph, opinions)
        total = state.total_sum
        from repro.core.schedulers import EdgeScheduler

        run_dynamics(
            state, EdgeScheduler(graph), LoadBalancing(),
            stop="never", rng=seed, max_steps=200,
        )
        assert state.total_sum == total
        state.check_consistency()

    @given(graph_with_opinions(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_all_dynamics_stay_in_initial_range(self, graph_opinions, seed):
        graph, opinions = graph_opinions
        lo, hi = min(opinions), max(opinions)
        for dynamics in (IncrementalVoting(), PullVoting(), MedianVoting()):
            state = OpinionState(graph, opinions)
            run_dynamics(
                state, VertexScheduler(graph), dynamics,
                stop="never", rng=seed, max_steps=100,
            )
            assert state.values.min() >= lo
            assert state.values.max() <= hi


# ---------------------------------------------------------------------------
# Count-engine invariants
# ---------------------------------------------------------------------------


class TestFastCompleteProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=-5, max_value=10),
            st.integers(min_value=0, max_value=30),
            min_size=1,
            max_size=5,
        ),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_winner_in_initial_range_and_counts_conserved(self, counts, seed):
        from repro.core.fast_complete import run_div_complete

        counts = {o: c for o, c in counts.items() if c > 0}
        n = sum(counts.values())
        if n < 2:
            return
        result = run_div_complete(n, counts, max_steps=2000, rng=seed)
        assert sum(result.counts.values()) == n
        lo, hi = min(counts), max(counts)
        assert all(lo <= opinion <= hi for opinion in result.counts)
        if result.stop_reason == "consensus":
            assert result.winner is not None
            assert result.two_adjacent_step is not None
            assert result.two_adjacent_step <= result.steps
        support = result.support
        assert support == sorted(result.counts)

    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_weight_trace_steps_by_at_most_one(self, n, seed):
        from repro.core.fast_complete import run_div_complete

        half = n // 2
        result = run_div_complete(
            n,
            {1: n - half, 4: half},
            max_steps=500,
            rng=seed,
            weight_interval=1,
        )
        diffs = np.abs(np.diff(result.weights))
        assert np.all(diffs <= 1)
        assert result.weights[0] == (n - half) * 1 + half * 4


# ---------------------------------------------------------------------------
# Theory invariants
# ---------------------------------------------------------------------------


class TestTheoryProperties:
    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_winning_probabilities_form_distribution(self, c):
        prediction = winning_probabilities(c)
        assert prediction.floor <= c <= prediction.ceil
        if prediction.floor != prediction.ceil:
            assert prediction.p_floor + prediction.p_ceil == pytest.approx(1.0)
            assert 0.0 <= prediction.p_floor <= 1.0
