"""Unit tests for repro.core.schedulers — eq. (2) and the edge process."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core import (
    AdversarialScheduler,
    BiasedScheduler,
    ChurnPlan,
    EdgeScheduler,
    OpinionState,
    Substrate,
    VertexScheduler,
    make_scheduler,
)
from repro.errors import ProcessError
from repro.graphs import Graph, lollipop_graph, path_graph, star_graph
from repro.rng import make_rng


class TestVertexScheduler:
    def test_pairs_are_adjacent(self, any_graph, rng):
        scheduler = VertexScheduler(any_graph)
        v, w = scheduler.draw_block(rng, 500)
        assert v.shape == w.shape == (500,)
        for a, b in zip(v, w):
            assert any_graph.has_edge(int(a), int(b))

    def test_updating_vertex_uniform(self, rng):
        # P(v chosen) = 1/n regardless of degree.
        graph = star_graph(5)
        scheduler = VertexScheduler(graph)
        v, _ = scheduler.draw_block(rng, 20000)
        counts = Counter(v.tolist())
        for vertex in range(graph.n):
            assert counts[vertex] / 20000 == pytest.approx(1 / 5, abs=0.02)

    def test_neighbour_uniform_given_vertex(self, rng):
        graph = path_graph(3)  # middle vertex has two neighbours
        scheduler = VertexScheduler(graph)
        v, w = scheduler.draw_block(rng, 30000)
        picks = w[v == 1]
        share = np.mean(picks == 0)
        assert share == pytest.approx(0.5, abs=0.02)

    def test_eq2_pair_probability(self, rng):
        # P(v chooses w) = 1/(n d(v)) — eq. (2) — measured on the star.
        graph = star_graph(5)
        scheduler = VertexScheduler(graph)
        v, w = scheduler.draw_block(rng, 40000)
        hub_to_leaf1 = np.mean((v == 0) & (w == 1))
        leaf1_to_hub = np.mean((v == 1) & (w == 0))
        assert hub_to_leaf1 == pytest.approx(1 / (5 * 4), abs=0.01)
        assert leaf1_to_hub == pytest.approx(1 / 5, abs=0.01)

    def test_rejects_isolated_vertices(self):
        with pytest.raises(ProcessError):
            VertexScheduler(Graph(3, [(0, 1)]))


class TestEdgeScheduler:
    def test_pairs_are_adjacent(self, any_graph, rng):
        scheduler = EdgeScheduler(any_graph)
        v, w = scheduler.draw_block(rng, 500)
        for a, b in zip(v, w):
            assert any_graph.has_edge(int(a), int(b))

    def test_updating_vertex_degree_proportional(self, rng):
        # P(v updates) = d(v)/2m under the edge process.
        graph = star_graph(5)  # hub degree 4, 2m = 8
        scheduler = EdgeScheduler(graph)
        v, _ = scheduler.draw_block(rng, 30000)
        hub_share = np.mean(v == 0)
        assert hub_share == pytest.approx(0.5, abs=0.02)

    def test_pair_probability_uniform_over_directed_edges(self, rng):
        graph = path_graph(4)  # 3 edges, 6 directed pairs
        scheduler = EdgeScheduler(graph)
        v, w = scheduler.draw_block(rng, 30000)
        counts = Counter(zip(v.tolist(), w.tolist()))
        assert len(counts) == 6
        for pair, count in counts.items():
            assert count / 30000 == pytest.approx(1 / 6, abs=0.02)

    def test_rejects_edgeless(self):
        with pytest.raises(ProcessError):
            EdgeScheduler(Graph(2, []))


class TestFactory:
    def test_make_scheduler(self, small_complete):
        assert isinstance(make_scheduler(small_complete, "vertex"), VertexScheduler)
        assert isinstance(make_scheduler(small_complete, "edge"), EdgeScheduler)

    def test_unknown_process(self, small_complete):
        with pytest.raises(ProcessError):
            make_scheduler(small_complete, "gossip")

    def test_deterministic_given_seed(self, small_complete):
        scheduler = VertexScheduler(small_complete)
        v1, w1 = scheduler.draw_block(make_rng(5), 100)
        v2, w2 = scheduler.draw_block(make_rng(5), 100)
        assert np.array_equal(v1, v2)
        assert np.array_equal(w1, w2)

    def test_scenario_schedulers_require_state(self, small_complete):
        for process in ("biased", "adversarial"):
            with pytest.raises(ProcessError, match="state"):
                make_scheduler(small_complete, process)

    def test_scenario_schedulers_constructed(self, small_complete):
        state = OpinionState(small_complete, [1, 2, 3, 4, 5, 1, 2, 3])
        biased = make_scheduler(small_complete, "biased", state=state, strength=0.5)
        assert isinstance(biased, BiasedScheduler)
        assert biased.bias == pytest.approx(0.5)
        adversarial = make_scheduler(
            small_complete, "adversarial", state=state, strength=0.25
        )
        assert isinstance(adversarial, AdversarialScheduler)
        assert adversarial.strength == pytest.approx(0.25)


class TestFrequenciesOnHeterogeneousDegrees:
    """Eq. (2) and the 1/2m rule measured on a genuinely mixed-degree graph."""

    DRAWS = 60000

    @pytest.fixture
    def lollipop(self):
        # K_5 plus a pendant path: degrees range from 1 to 5.
        return lollipop_graph(5, 4)

    def test_vertex_process_pair_frequencies(self, lollipop, rng):
        scheduler = VertexScheduler(lollipop)
        v, w = scheduler.draw_block(rng, self.DRAWS)
        counts = Counter(zip(v.tolist(), w.tolist()))
        degrees = lollipop.degrees
        for a in range(lollipop.n):
            for b in lollipop.neighbors(a):
                expected = 1.0 / (lollipop.n * degrees[a])
                measured = counts[(a, int(b))] / self.DRAWS
                assert measured == pytest.approx(expected, abs=0.006), (a, b)

    def test_edge_process_pair_frequencies(self, lollipop, rng):
        scheduler = EdgeScheduler(lollipop)
        v, w = scheduler.draw_block(rng, self.DRAWS)
        counts = Counter(zip(v.tolist(), w.tolist()))
        expected = 1.0 / (2 * lollipop.m)
        assert len(counts) == 2 * lollipop.m
        for pair, count in counts.items():
            assert count / self.DRAWS == pytest.approx(expected, abs=0.006), pair


class TestBiasedScheduler:
    def test_pairs_are_adjacent(self, any_graph, rng):
        state = OpinionState(any_graph, list(range(1, any_graph.n + 1)))
        scheduler = BiasedScheduler(any_graph, state, bias=1.5)
        v, w = scheduler.draw_block(rng, 400)
        for a, b in zip(v, w):
            assert any_graph.has_edge(int(a), int(b))

    def test_deterministic_given_seed(self, small_complete):
        state = OpinionState(small_complete, [1, 1, 2, 3, 4, 5, 5, 3])
        scheduler = BiasedScheduler(small_complete, state, bias=2.0)
        v1, w1 = scheduler.draw_block(make_rng(7), 200)
        v2, w2 = scheduler.draw_block(make_rng(7), 200)
        assert np.array_equal(v1, v2)
        assert np.array_equal(w1, w2)

    def test_positive_bias_targets_extreme_holders(self, small_complete, rng):
        # Vertices 0/1 hold the extremes; they must update strictly more
        # often than the centre holders under positive bias.
        state = OpinionState(small_complete, [1, 5, 3, 3, 3, 3, 3, 3])
        scheduler = BiasedScheduler(small_complete, state, bias=3.0)
        v, _ = scheduler.draw_block(rng, 20000)
        extreme_share = np.mean((v == 0) | (v == 1))
        # Unbiased share would be 2/8; weights (1+3)/(1+0) quadruple it
        # relative to centre vertices: expect 8/(8+6) ≈ 0.571.
        assert extreme_share == pytest.approx(8 / 14, abs=0.02)

    def test_negative_bias_shelters_extreme_holders(self, small_complete, rng):
        state = OpinionState(small_complete, [1, 5, 3, 3, 3, 3, 3, 3])
        scheduler = BiasedScheduler(small_complete, state, bias=-1.0)
        v, _ = scheduler.draw_block(rng, 20000)
        # Weight 1 + (-1)·1 = 0: the extreme holders never update.
        assert not np.any((v == 0) | (v == 1))

    def test_zero_bias_matches_vertex_process_stream(self, small_complete):
        state = OpinionState(small_complete, [1, 2, 3, 4, 5, 1, 2, 3])
        biased = BiasedScheduler(small_complete, state, bias=0.0)
        plain = VertexScheduler(small_complete)
        v1, w1 = biased.draw_block(make_rng(3), 300)
        v2, w2 = plain.draw_block(make_rng(3), 300)
        assert np.array_equal(v1, v2)
        assert np.array_equal(w1, w2)

    def test_rejects_bias_below_minus_one(self, small_complete):
        state = OpinionState(small_complete, [1] * 8)
        with pytest.raises(ProcessError, match="bias"):
            BiasedScheduler(small_complete, state, bias=-1.5)


class TestAdversarialScheduler:
    def test_pairs_are_adjacent(self, any_graph, rng):
        state = OpinionState(any_graph, list(range(1, any_graph.n + 1)))
        scheduler = AdversarialScheduler(any_graph, state, strength=0.7)
        v, w = scheduler.draw_block(rng, 400)
        for a, b in zip(v, w):
            assert any_graph.has_edge(int(a), int(b))

    def test_deterministic_given_seed(self, small_complete):
        state = OpinionState(small_complete, [1, 1, 2, 3, 4, 5, 5, 3])
        scheduler = AdversarialScheduler(small_complete, state, strength=0.5)
        v1, w1 = scheduler.draw_block(make_rng(11), 200)
        v2, w2 = scheduler.draw_block(make_rng(11), 200)
        assert np.array_equal(v1, v2)
        assert np.array_equal(w1, w2)

    def test_full_strength_always_shows_most_extreme_neighbour(
        self, small_complete, rng
    ):
        values = [1, 5, 3, 3, 3, 3, 3, 3]
        state = OpinionState(small_complete, values)
        scheduler = AdversarialScheduler(small_complete, state, strength=1.0)
        v, w = scheduler.draw_block(rng, 2000)
        # Centre = 6; on K_8 the most extreme neighbour of anyone is
        # vertex 0 (|2·1-6| = 4) — argmax ties resolve to the first.
        assert np.all(w[v != 0] == 0)

    def test_zero_strength_matches_vertex_process_stream(self, small_complete):
        state = OpinionState(small_complete, [1, 2, 3, 4, 5, 1, 2, 3])
        adversarial = AdversarialScheduler(small_complete, state, strength=0.0)
        plain = VertexScheduler(small_complete)
        v1, w1 = adversarial.draw_block(make_rng(3), 300)
        v2, w2 = plain.draw_block(make_rng(3), 300)
        assert np.array_equal(v1, v2)
        assert np.array_equal(w1, w2)

    def test_rejects_strength_outside_unit_interval(self, small_complete):
        state = OpinionState(small_complete, [1] * 8)
        with pytest.raises(ProcessError, match="strength"):
            AdversarialScheduler(small_complete, state, strength=1.2)


class TestEpochStaleness:
    """The scheduler cache-staleness guard (substrate contract)."""

    def _churning(self, rng):
        graph = Graph(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3), (1, 4)]
        )
        return Substrate(graph, ChurnPlan(period=10, swaps=8, seed=42))

    @pytest.mark.parametrize("cls", [VertexScheduler, EdgeScheduler])
    def test_stale_cache_draw_raises(self, cls, rng):
        substrate = self._churning(rng)
        scheduler = cls(substrate)
        scheduler.draw_block(rng, 10)
        advanced = False
        step = 0
        while not advanced:  # swaps can all be rejected on tiny graphs
            step += 10
            advanced = substrate.advance_to(step)
        with pytest.raises(ProcessError, match="stale scheduler cache"):
            scheduler.draw_block(rng, 10)
        scheduler.rebuild()
        v, w = scheduler.draw_block(rng, 50)
        for a, b in zip(v, w):
            assert substrate.graph.has_edge(int(a), int(b))

    def test_static_substrate_never_goes_stale(self, small_complete, rng):
        substrate = Substrate(small_complete)
        scheduler = VertexScheduler(substrate)
        assert not substrate.advance_to(10**6)
        scheduler.draw_block(rng, 10)  # no rebuild needed, no raise
