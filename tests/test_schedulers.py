"""Unit tests for repro.core.schedulers — eq. (2) and the edge process."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core import EdgeScheduler, VertexScheduler, make_scheduler
from repro.errors import ProcessError
from repro.graphs import Graph, path_graph, star_graph
from repro.rng import make_rng


class TestVertexScheduler:
    def test_pairs_are_adjacent(self, any_graph, rng):
        scheduler = VertexScheduler(any_graph)
        v, w = scheduler.draw_block(rng, 500)
        assert v.shape == w.shape == (500,)
        for a, b in zip(v, w):
            assert any_graph.has_edge(int(a), int(b))

    def test_updating_vertex_uniform(self, rng):
        # P(v chosen) = 1/n regardless of degree.
        graph = star_graph(5)
        scheduler = VertexScheduler(graph)
        v, _ = scheduler.draw_block(rng, 20000)
        counts = Counter(v.tolist())
        for vertex in range(graph.n):
            assert counts[vertex] / 20000 == pytest.approx(1 / 5, abs=0.02)

    def test_neighbour_uniform_given_vertex(self, rng):
        graph = path_graph(3)  # middle vertex has two neighbours
        scheduler = VertexScheduler(graph)
        v, w = scheduler.draw_block(rng, 30000)
        picks = w[v == 1]
        share = np.mean(picks == 0)
        assert share == pytest.approx(0.5, abs=0.02)

    def test_eq2_pair_probability(self, rng):
        # P(v chooses w) = 1/(n d(v)) — eq. (2) — measured on the star.
        graph = star_graph(5)
        scheduler = VertexScheduler(graph)
        v, w = scheduler.draw_block(rng, 40000)
        hub_to_leaf1 = np.mean((v == 0) & (w == 1))
        leaf1_to_hub = np.mean((v == 1) & (w == 0))
        assert hub_to_leaf1 == pytest.approx(1 / (5 * 4), abs=0.01)
        assert leaf1_to_hub == pytest.approx(1 / 5, abs=0.01)

    def test_rejects_isolated_vertices(self):
        with pytest.raises(ProcessError):
            VertexScheduler(Graph(3, [(0, 1)]))


class TestEdgeScheduler:
    def test_pairs_are_adjacent(self, any_graph, rng):
        scheduler = EdgeScheduler(any_graph)
        v, w = scheduler.draw_block(rng, 500)
        for a, b in zip(v, w):
            assert any_graph.has_edge(int(a), int(b))

    def test_updating_vertex_degree_proportional(self, rng):
        # P(v updates) = d(v)/2m under the edge process.
        graph = star_graph(5)  # hub degree 4, 2m = 8
        scheduler = EdgeScheduler(graph)
        v, _ = scheduler.draw_block(rng, 30000)
        hub_share = np.mean(v == 0)
        assert hub_share == pytest.approx(0.5, abs=0.02)

    def test_pair_probability_uniform_over_directed_edges(self, rng):
        graph = path_graph(4)  # 3 edges, 6 directed pairs
        scheduler = EdgeScheduler(graph)
        v, w = scheduler.draw_block(rng, 30000)
        counts = Counter(zip(v.tolist(), w.tolist()))
        assert len(counts) == 6
        for pair, count in counts.items():
            assert count / 30000 == pytest.approx(1 / 6, abs=0.02)

    def test_rejects_edgeless(self):
        with pytest.raises(ProcessError):
            EdgeScheduler(Graph(2, []))


class TestFactory:
    def test_make_scheduler(self, small_complete):
        assert isinstance(make_scheduler(small_complete, "vertex"), VertexScheduler)
        assert isinstance(make_scheduler(small_complete, "edge"), EdgeScheduler)

    def test_unknown_process(self, small_complete):
        with pytest.raises(ProcessError):
            make_scheduler(small_complete, "gossip")

    def test_deterministic_given_seed(self, small_complete):
        scheduler = VertexScheduler(small_complete)
        v1, w1 = scheduler.draw_block(make_rng(5), 100)
        v2, w2 = scheduler.draw_block(make_rng(5), 100)
        assert np.array_equal(v1, v2)
        assert np.array_equal(w1, w2)
