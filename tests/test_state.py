"""Unit tests for repro.core.state.OpinionState."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OpinionState
from repro.errors import InvalidOpinionsError
from repro.graphs import complete_graph, star_graph


@pytest.fixture
def state(small_complete):
    return OpinionState(small_complete, [1, 1, 2, 2, 3, 3, 5, 5])


class TestConstruction:
    def test_wrong_length_rejected(self, small_complete):
        with pytest.raises(InvalidOpinionsError):
            OpinionState(small_complete, [1, 2, 3])

    def test_initial_aggregates(self, state):
        assert state.n == 8
        assert state.total_sum == 22
        assert state.support_size == 4
        assert state.support() == [1, 2, 3, 5]
        assert state.min_opinion == 1
        assert state.max_opinion == 5
        assert state.range_width == 4
        assert state.mean() == pytest.approx(22 / 8)

    def test_counts(self, state):
        assert state.count(1) == 2
        assert state.count(4) == 0
        assert state.count(99) == 0
        assert state.counts_dict() == {1: 2, 2: 2, 3: 2, 5: 2}

    def test_negative_opinions_supported(self, small_complete):
        state = OpinionState(small_complete, [-3, -3, -2, -2, -1, -1, 0, 0])
        assert state.min_opinion == -3
        assert state.max_opinion == 0
        assert state.total_sum == -12

    def test_input_not_aliased(self, small_complete):
        opinions = np.ones(8, dtype=np.int64)
        state = OpinionState(small_complete, opinions)
        opinions[0] = 99
        assert state.value(0) == 1

    def test_values_view_read_only(self, state):
        with pytest.raises(ValueError):
            state.values[0] = 9


class TestDegreeWeighting:
    def test_regular_graph_weighted_equals_simple(self, state):
        assert state.weighted_mean() == pytest.approx(state.mean())
        assert state.total_weight("vertex") == pytest.approx(
            state.total_weight("edge")
        )

    def test_star_weighted_mean(self):
        graph = star_graph(5)  # hub degree 4, 4 leaves degree 1
        state = OpinionState(graph, [5, 1, 1, 1, 1])
        # Z/n = pi-weighted: 0.5*5 + 4*(1/8)*1 = 3.0
        assert state.weighted_mean() == pytest.approx(3.0)
        assert state.mean() == pytest.approx(9 / 5)
        assert state.degree_count(5) == 4
        assert state.stationary_measure(5) == pytest.approx(0.5)

    def test_unknown_process_rejected(self, state):
        with pytest.raises(InvalidOpinionsError):
            state.total_weight("bogus")


class TestApply:
    def test_apply_updates_everything(self, state):
        old = state.apply(0, 2)
        assert old == 1
        assert state.value(0) == 2
        assert state.count(1) == 1
        assert state.count(2) == 3
        assert state.total_sum == 23
        state.check_consistency()

    def test_apply_same_value_noop(self, state):
        before = state.total_sum
        assert state.apply(0, 1) == 1
        assert state.total_sum == before

    def test_apply_out_of_range_rejected(self, state):
        with pytest.raises(InvalidOpinionsError):
            state.apply(0, 0)
        with pytest.raises(InvalidOpinionsError):
            state.apply(0, 6)

    def test_support_tracking_through_removal(self, state):
        state.apply(6, 4)
        state.apply(7, 4)  # opinion 5 now empty
        assert state.max_opinion == 4
        assert state.support() == [1, 2, 3, 4]
        state.check_consistency()

    def test_min_advances(self, state):
        state.apply(0, 2)
        state.apply(1, 2)
        assert state.min_opinion == 2
        assert state.range_width == 3

    def test_interior_reappearance(self, small_complete):
        state = OpinionState(small_complete, [1, 1, 1, 1, 3, 3, 3, 3])
        state.apply(4, 2)
        assert state.support() == [1, 2, 3]
        state.apply(4, 3)
        assert state.support() == [1, 3]
        state.check_consistency()

    def test_consensus_detection(self, small_complete):
        state = OpinionState(small_complete, [2] * 8)
        assert state.is_consensus
        assert state.is_two_adjacent
        assert state.consensus_value() == 2

    def test_two_adjacent_detection(self, small_complete):
        adjacent = OpinionState(small_complete, [2, 2, 3, 3, 3, 3, 3, 3])
        assert adjacent.is_two_adjacent
        assert not adjacent.is_consensus
        assert adjacent.consensus_value() is None
        gap = OpinionState(small_complete, [2, 2, 4, 4, 4, 4, 4, 4])
        assert not gap.is_two_adjacent

    def test_holders(self, state):
        assert list(state.holders(2)) == [2, 3]
        assert list(state.holders(4)) == []

    def test_copy_is_independent(self, state):
        clone = state.copy()
        clone.apply(0, 3)
        assert state.value(0) == 1
        assert clone.value(0) == 3
        state.check_consistency()
        clone.check_consistency()

    def test_copy_preserves_initial_opinion_range(self, small_complete):
        """Regression: copy() used to rebuild through the constructor,
        re-deriving the offset and counts width from the *current*
        values — so once an evolved state's extreme classes emptied, a
        copy rejected values apply() documents as legal (the whole
        initial range)."""
        state = OpinionState(small_complete, [1, 1, 2, 2, 3, 3, 5, 5])
        # Evolve until the occupied range shrinks to [2, 3].
        for v, value in ((0, 2), (1, 2), (6, 3), (7, 3)):
            state.apply(v, value)
        assert state.min_opinion == 2 and state.max_opinion == 3
        clone = state.copy()
        # Values from the original initial range must stay legal.
        clone.apply(0, 1)
        clone.apply(1, 5)
        assert clone.min_opinion == 1 and clone.max_opinion == 5
        clone.check_consistency()
        # ... and the source state is untouched.
        assert state.min_opinion == 2 and state.max_opinion == 3
        state.check_consistency()

    def test_copy_preserves_deferred_weights(self, small_complete):
        state = OpinionState(small_complete, [1, 1, 2, 2, 3, 3, 5, 5])
        state.apply_block(
            np.array([0, 6]), np.array([2, 3]), defer_weights=True
        )
        clone = state.copy()
        assert clone.total_sum == state.total_sum
        clone.check_consistency()
        state.check_consistency()


class TestConsistencyUnderRandomUpdates:
    def test_random_walk_of_applies(self, rng):
        graph = complete_graph(12)
        opinions = rng.integers(1, 6, size=12)
        state = OpinionState(graph, opinions)
        lo, hi = int(opinions.min()), int(opinions.max())
        for _ in range(300):
            v = int(rng.integers(0, 12))
            new = int(rng.integers(lo, hi + 1))
            state.apply(v, new)
        state.check_consistency()


class _HugeDegreeGraph:
    """Graph stub whose per-class degree sums exceed float64 exactness (2^53)."""

    def __init__(self, degrees):
        self._degrees = np.asarray(degrees, dtype=np.int64)
        self.n = len(degrees)
        self.m = max(1, int(self._degrees.sum()) // 2)

    @property
    def degrees(self):
        return self._degrees


class TestExactDegreeAggregates:
    def test_high_degree_sums_stay_exact(self):
        # Regression: _degree_counts was built via a float64-weighted
        # bincount cast back to int64, which loses exactness once a
        # degree-weighted sum exceeds 2^53 — 2^61 + 1 rounds to 2^61.
        big = 2**60
        graph = _HugeDegreeGraph([big, 1, big, 3, 5])
        state = OpinionState(graph, [2, 2, 2, 7, 7])
        assert state.degree_count(2) == 2 * big + 1
        assert state.degree_count(7) == 8
        state.check_consistency()

    def test_high_degree_state_consistent_after_apply(self):
        big = 2**60
        graph = _HugeDegreeGraph([big, 1, big, 3, 5])
        state = OpinionState(graph, [2, 2, 2, 7, 7])
        state.apply(1, 7)
        assert state.degree_count(2) == 2 * big
        assert state.degree_count(7) == 9
        state.check_consistency()
