"""Unit tests for repro.analysis.montecarlo and repro.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_trials, run_trials_over
from repro.errors import AnalysisError
from repro.rng import derive_seed, iter_rngs, make_rng, spawn_rngs


class TestRngUtilities:
    def test_make_rng_passthrough(self):
        # A raw Generator built outside make_rng is the point of this test.
        gen = np.random.default_rng(3)  # lint: disable=RNG001
        assert make_rng(gen) is gen

    def test_make_rng_from_int_deterministic(self):
        assert make_rng(5).integers(0, 100) == make_rng(5).integers(0, 100)

    def test_spawn_independent_and_deterministic(self):
        first = [g.integers(0, 1 << 30) for g in spawn_rngs(7, 4)]
        second = [g.integers(0, 1 << 30) for g in spawn_rngs(7, 4)]
        assert first == second
        assert len(set(first)) == 4  # streams differ from each other

    def test_spawn_count_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        gens = spawn_rngs(make_rng(1), 3)
        assert len(gens) == 3

    def test_iter_rngs(self):
        stream = iter_rngs(9)
        a = next(stream).integers(0, 1 << 30)
        b = next(stream).integers(0, 1 << 30)
        assert a != b

    def test_derive_seed_stable(self):
        assert derive_seed(3, 1, 2) == derive_seed(3, 1, 2)
        assert derive_seed(3, 1, 2) != derive_seed(3, 2, 1)


class TestRunTrials:
    def test_collects_outcomes(self):
        outcomes = run_trials(5, lambda i, rng: i * 10, seed=0)
        assert outcomes.outcomes == [0, 10, 20, 30, 40]
        assert outcomes.count == 5

    def test_trials_get_independent_rngs(self):
        draws = run_trials(6, lambda i, rng: int(rng.integers(0, 1 << 30)), seed=1)
        assert len(set(draws.outcomes)) == 6

    def test_deterministic_given_seed(self):
        a = run_trials(4, lambda i, rng: int(rng.integers(0, 100)), seed=2)
        b = run_trials(4, lambda i, rng: int(rng.integers(0, 100)), seed=2)
        assert a.outcomes == b.outcomes

    def test_frequency_and_count_where(self):
        outcomes = run_trials(10, lambda i, rng: i % 2, seed=0)
        assert outcomes.frequency(lambda x: x == 1) == pytest.approx(0.5)
        assert outcomes.count_where(lambda x: x == 0) == 5

    def test_map(self):
        outcomes = run_trials(3, lambda i, rng: i, seed=0)
        assert outcomes.map(lambda x: x + 1) == [1, 2, 3]

    def test_validation(self):
        with pytest.raises(AnalysisError):
            run_trials(0, lambda i, rng: None)


class TestRunTrialsOver:
    def test_parameter_batches(self):
        results = run_trials_over(
            ["a", "b"], 3, lambda p, i, rng: f"{p}{i}", seed=0
        )
        assert [p for p, _ in results] == ["a", "b"]
        assert results[0][1].outcomes == ["a0", "a1", "a2"]

    def test_adding_parameters_keeps_existing_streams(self):
        def trial(p, i, rng):
            return int(rng.integers(0, 1 << 30))

        short = run_trials_over([1, 2], 3, trial, seed=5)
        longer = run_trials_over([1, 2, 3], 3, trial, seed=5)
        assert short[0][1].outcomes == longer[0][1].outcomes
        assert short[1][1].outcomes == longer[1][1].outcomes

    def test_validation(self):
        with pytest.raises(AnalysisError):
            run_trials_over([1], 0, lambda p, i, rng: None)
