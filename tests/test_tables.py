"""Unit tests for repro.experiments.tables."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.tables import ExperimentReport, Table


class TestTable:
    def test_render_alignment(self):
        table = Table(title="demo", headers=["name", "value"])
        table.add_row("alpha", 1.23456)
        table.add_row("b", True)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in rendered
        assert "1.235" in rendered  # 4 significant digits
        assert "yes" in rendered  # booleans humanized

    def test_row_width_checked(self):
        table = Table(title="t", headers=["a", "b"])
        with pytest.raises(ExperimentError):
            table.add_row(1)

    def test_notes_rendered(self):
        table = Table(title="t", headers=["a"])
        table.add_row(1)
        table.add_note("hello note")
        assert "note: hello note" in table.render()


class TestReport:
    def test_render_order(self):
        report = ExperimentReport("E0", "title here")
        report.add_line("the-preamble")
        table = Table(title="the-table", headers=["a"])
        table.add_row(5)
        report.add_table(table)
        rendered = report.render()
        assert (
            rendered.index("E0")
            < rendered.index("the-preamble")
            < rendered.index("the-table")
        )

    def test_empty_report(self):
        assert ExperimentReport("E9", "x").render() == "== E9: x =="
