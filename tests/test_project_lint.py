"""Tests for the project-wide analysis tier (``repro.devtools``).

Every analyzer family gets a seeded-violation fixture (must fire with
the right rule id and location) and a clean twin (must stay silent).
The fixtures are in-memory mini-projects fed through ``extra_sources``,
so the tests pin analyzer *behaviour* without depending on the real
tree.  The substrate (project model, import graph, symbol resolution),
the layer-spec config parser (both TOML paths), the content-hash cache,
the suppression baseline and the SARIF reporter each get their own
sections.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.devtools import (
    Finding,
    LintConfig,
    LintConfigError,
    Severity,
    build_project,
    findings_from_sarif,
    lint_project,
    parse_config,
    sarif_log,
    split_rule_ids,
    strongly_connected_components,
    superseded_rule_ids,
    suppression_aliases,
)
from repro.cli import main as cli_main

PARALLEL = "src/repro/parallel/base.py"
KERNELS_INIT = "src/repro/core/kernels/__init__.py"

#: A minimal stand-in for the kernel facade so reader/installer calls
#: resolve to their defining module.
KERNELS_SOURCE = """\
def active_kernel():
    return None


def resolve_kernel(spec):
    return spec


def use_kernel(kernel):
    return kernel
"""


def project(sources, rules, config=None, **kwargs):
    """Lint an in-memory project with a selected rule subset."""
    run = lint_project(
        [],
        rule_ids=rules,
        config=config if config is not None else LintConfig(),
        use_cache=False,
        extra_sources={
            path: textwrap.dedent(source) for path, source in sources.items()
        },
        **kwargs,
    )
    return run.findings


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# PAR0xx: concurrency safety
# ---------------------------------------------------------------------------


class TestPAR001SharedStateMutation:
    def test_worker_reachable_mutation_flagged(self):
        findings = project(
            {
                PARALLEL: """\
                SEEN = []


                def _run_task_chunk(tasks):
                    for task in tasks:
                        _record(task)


                def _record(task):
                    SEEN.append(task)
                """
            },
            ["PAR001"],
        )
        assert rule_ids(findings) == ["PAR001"]
        assert findings[0].path == PARALLEL
        assert "'SEEN'" in findings[0].message
        assert "_record" in findings[0].message

    def test_local_accumulator_is_fine(self):
        findings = project(
            {
                PARALLEL: """\
                def _run_task_chunk(tasks):
                    out = []
                    for task in tasks:
                        out.append(task)
                    return out
                """
            },
            ["PAR001"],
        )
        assert findings == []

    def test_global_statement_rebinding_flagged(self):
        findings = project(
            {
                PARALLEL: """\
                COUNT = 0


                def _run_task_chunk(tasks):
                    global COUNT
                    COUNT = len(tasks)
                    return tasks
                """
            },
            ["PAR001"],
        )
        assert rule_ids(findings) == ["PAR001"]
        assert "'COUNT'" in findings[0].message


class TestPAR002AmbientContext:
    def test_unreshipped_ambient_read_flagged(self):
        findings = project(
            {
                KERNELS_INIT: KERNELS_SOURCE,
                PARALLEL: """\
                from repro.core.kernels import active_kernel


                def _run_task_chunk(tasks):
                    return [run_one(task) for task in tasks]


                def run_one(task):
                    kernel = active_kernel()
                    return kernel, task
                """,
            },
            ["PAR002"],
        )
        assert rule_ids(findings) == ["PAR002"]
        assert "ambient kernel context" in findings[0].message
        assert "active_kernel" in findings[0].message

    def test_installer_in_entry_establishes_context(self):
        findings = project(
            {
                KERNELS_INIT: KERNELS_SOURCE,
                PARALLEL: """\
                from repro.core.kernels import active_kernel, use_kernel


                def _run_task_chunk(tasks, kernel):
                    with use_kernel(kernel):
                        return [run_one(task) for task in tasks]


                def run_one(task):
                    return active_kernel(), task
                """,
            },
            ["PAR002"],
        )
        assert findings == []

    def test_aliased_installer_import_recognised(self):
        findings = project(
            {
                KERNELS_INIT: KERNELS_SOURCE,
                PARALLEL: """\
                from repro.core.kernels import active_kernel
                from repro.core.kernels import use_kernel as _ship_kernel


                def _run_task_chunk(tasks, kernel):
                    with _ship_kernel(kernel):
                        return [run_one(task) for task in tasks]


                def run_one(task):
                    return active_kernel(), task
                """,
            },
            ["PAR002"],
        )
        assert findings == []


class TestPAR003UnpicklableTrialArgument:
    def test_lambda_trial_with_workers_flagged(self):
        findings = project(
            {
                "examples/demo.py": """\
                from repro.analysis import run_trials


                def main():
                    return run_trials(8, lambda i, rng: 0.0, workers=4)
                """
            },
            ["PAR003"],
        )
        assert rule_ids(findings) == ["PAR003"]
        assert "lambda" in findings[0].message

    def test_serial_lambda_is_fine(self):
        findings = project(
            {
                "examples/demo.py": """\
                from repro.analysis import run_trials


                def main():
                    return run_trials(8, lambda i, rng: 0.0, workers=None)
                """
            },
            ["PAR003"],
        )
        assert findings == []

    def test_local_closure_forwarded_workers_flagged(self):
        findings = project(
            {
                "examples/demo.py": """\
                from repro.analysis import run_trials


                def main(workers):
                    def trial(i, rng):
                        return 0.0

                    return run_trials(8, trial, workers=workers)
                """
            },
            ["PAR003"],
        )
        assert rule_ids(findings) == ["PAR003"]
        assert "'trial'" in findings[0].message

    def test_module_level_trial_is_fine(self):
        findings = project(
            {
                "examples/demo.py": """\
                from repro.analysis import run_trials


                def trial(i, rng):
                    return 0.0


                def main(workers):
                    return run_trials(8, trial, workers=workers)
                """
            },
            ["PAR003"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# DETxxx: determinism flow
# ---------------------------------------------------------------------------


class TestDET001RngProvenance:
    def test_unseeded_default_rng_flagged(self):
        findings = project(
            {
                "src/repro/analysis/stats.py": """\
                import numpy as np


                def sample():
                    rng = np.random.default_rng()
                    return rng.random()
                """
            },
            ["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]
        assert findings[0].line == 5
        assert "OS entropy" in findings[0].message

    def test_unseeded_bit_generator_flagged_even_in_tests(self):
        findings = project(
            {
                "tests/test_stats.py": """\
                from numpy.random import PCG64


                def test_draw():
                    assert PCG64() is not None
                """
            },
            ["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]

    def test_seeded_construction_is_fine(self):
        findings = project(
            {
                "src/repro/analysis/stats.py": """\
                import numpy as np


                def sample(seed):
                    rng = np.random.default_rng(seed)
                    return rng.random()
                """
            },
            ["DET001"],
        )
        assert findings == []


class TestDET002GlobalRandomnessFlow:
    def test_supersedes_rng001_with_new_id(self):
        findings = project(
            {
                "src/repro/analysis/draws.py": """\
                import numpy as np


                def draw():
                    return np.random.rand(3)
                """
            },
            ["DET002"],
        )
        assert rule_ids(findings) == ["DET002"]
        assert findings[0].path == "src/repro/analysis/draws.py"
        assert findings[0].line == 5

    def test_alias_comment_against_rng001_suppresses_det002(self):
        findings = project(
            {
                "src/repro/analysis/draws.py": """\
                import numpy as np


                def draw():
                    return np.random.rand(3)  # lint: disable=RNG001
                """
            },
            ["DET002"],
        )
        assert findings == []


class TestDET003RngParameterDefaults:
    def test_non_integer_seed_default_flagged(self):
        findings = project(
            {
                "src/repro/analysis/sim.py": """\
                def simulate(trials, seed=1.5):
                    return trials
                """
            },
            ["DET003"],
        )
        assert rule_ids(findings) == ["DET003"]
        assert "non-None default 1.5" in findings[0].message

    def test_expression_rng_default_flagged(self):
        findings = project(
            {
                "src/repro/analysis/sim.py": """\
                from repro.rng import make_rng


                def simulate(trials, rng=make_rng(0)):
                    return trials
                """
            },
            ["DET003"],
        )
        assert rule_ids(findings) == ["DET003"]
        assert "non-literal default expression" in findings[0].message

    def test_sanctioned_defaults_are_fine(self):
        findings = project(
            {
                "src/repro/analysis/sim.py": """\
                def simulate(trials, seed=0, base_seed=-1, rng=None):
                    return trials
                """
            },
            ["DET003"],
        )
        assert findings == []

    def test_tests_are_exempt(self):
        findings = project(
            {
                "tests/test_sim.py": """\
                def run(seed=1.5):
                    return seed
                """
            },
            ["DET003"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# KERxxx: kernel/dynamics contracts
# ---------------------------------------------------------------------------


class TestKER002BatchedWithoutSequential:
    def test_step_block_without_step_flagged(self):
        findings = project(
            {
                "src/repro/core/dynamics.py": """\
                class BatchedOnly:
                    def step_block(self, state, rng):
                        return state
                """
            },
            ["KER002"],
        )
        assert rule_ids(findings) == ["KER002"]
        assert "BatchedOnly" in findings[0].message

    def test_inherited_step_across_modules_is_fine(self):
        findings = project(
            {
                "src/repro/core/dynamics.py": """\
                class Base:
                    def step(self, state, rng):
                        return state
                """,
                "src/repro/core/fast.py": """\
                from repro.core.dynamics import Base


                class Fast(Base):
                    def step_block(self, state, rng):
                        return state
                """,
            },
            ["KER002"],
        )
        assert findings == []


class TestKER003StateInternalsAccess:
    def test_private_cache_access_flagged(self):
        findings = project(
            {
                "src/repro/analysis/peek.py": """\
                def peek(state):
                    return state._counts


                def poke(state):
                    state._sum = 0.0
                """
            },
            ["KER003"],
        )
        assert rule_ids(findings) == ["KER003", "KER003"]
        assert "reads" in findings[0].message
        assert "mutates" in findings[1].message

    def test_self_access_and_tests_exempt(self):
        findings = project(
            {
                "src/repro/analysis/own.py": """\
                class Tally:
                    def __init__(self):
                        self._counts = {}

                    def bump(self, key):
                        self._counts[key] = 1
                """,
                "tests/test_state.py": """\
                def test_internals(state):
                    assert state._counts is not None
                """,
            },
            ["KER003"],
        )
        assert findings == []


class TestKER004KernelAgnosticExperiments:
    def test_backend_import_in_experiment_flagged(self):
        findings = project(
            {
                "src/repro/core/kernels/block.py": """\
                def apply_block(state, updates):
                    return state
                """,
                "src/repro/experiments/e9.py": """\
                from repro.core.kernels.block import apply_block


                def run():
                    return apply_block
                """,
            },
            ["KER004"],
        )
        assert rule_ids(findings) == ["KER004"]
        assert "repro.core.kernels.block" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_literal_backend_selection_flagged(self):
        findings = project(
            {
                KERNELS_INIT: KERNELS_SOURCE,
                "src/repro/baselines/mc.py": """\
                from repro.core.kernels import use_kernel


                def run():
                    with use_kernel("block"):
                        return 1
                """,
            },
            ["KER004"],
        )
        assert rule_ids(findings) == ["KER004"]
        assert "'block'" in findings[0].message

    def test_facade_and_threaded_kernel_are_fine(self):
        findings = project(
            {
                KERNELS_INIT: KERNELS_SOURCE,
                "src/repro/experiments/e9.py": """\
                from repro.core.kernels import use_kernel


                def run(kernel=None):
                    with use_kernel(kernel):
                        return 1
                """,
            },
            ["KER004"],
        )
        assert findings == []


class TestKER005SubstrateDeclaration:
    def test_fast_path_without_declaration_flagged(self):
        findings = project(
            {
                "src/repro/core/turbo.py": """\
                class TurboDynamics:
                    compiled_id = 7

                    def step(self, state, v, w, rng):
                        return False

                    def step_block(self, state, v, w):
                        return state
                """
            },
            ["KER005"],
        )
        assert rule_ids(findings) == ["KER005"]
        assert "TurboDynamics" in findings[0].message
        assert "step_block" in findings[0].message
        assert "compiled_id" in findings[0].message
        assert "substrate_compat" in findings[0].suggestion

    def test_declared_and_inherited_declarations_are_fine(self):
        findings = project(
            {
                "src/repro/core/dynamics.py": """\
                SUBSTRATE_FEATURES = ("frozen", "churn")


                class Declared:
                    substrate_compat = SUBSTRATE_FEATURES

                    def step(self, state, v, w, rng):
                        return False

                    def step_block(self, state, v, w):
                        return state
                """,
                "src/repro/core/fast.py": """\
                from repro.core.dynamics import Declared


                class Faster(Declared):
                    compiled_id = 3
                """,
            },
            ["KER005"],
        )
        assert findings == []

    def test_slow_path_dynamics_need_no_declaration(self):
        findings = project(
            {
                "src/repro/core/noisy.py": """\
                class NoisyOnly:
                    def step(self, state, v, w, rng):
                        return False
                """
            },
            ["KER005"],
        )
        assert findings == []

    def test_protocol_interfaces_are_exempt(self):
        # A typing.Protocol describes the fast-path *interface*; the
        # declaration duty falls on its concrete implementations.
        findings = project(
            {
                "src/repro/core/proto.py": """\
                from typing import Protocol


                class BlockCapable(Protocol):
                    def step_block(self, state, v, w):
                        ...
                """
            },
            ["KER005"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# LAYxxx: declared layering
# ---------------------------------------------------------------------------

LAYER_SPEC = """\
[[tool.div-repro.lint.layers]]
name = "foundation"
modules = ["repro.rng"]

[[tool.div-repro.lint.layers]]
name = "core"
modules = ["repro.core"]
may_import = ["foundation"]

[[tool.div-repro.lint.layers]]
name = "drivers"
modules = ["repro.experiments.e*"]
may_import = ["core", "foundation"]
independent = true
"""

LAYERED_SOURCES = {
    "src/repro/rng.py": "SEED = 1\n",
    "src/repro/core/engine.py": (
        "from repro.rng import SEED\n"
        "from repro.experiments.e1 import f\n"
    ),
    "src/repro/experiments/e1.py": (
        "from repro.experiments.e2 import g\n\n\ndef f():\n    return g()\n"
    ),
    "src/repro/experiments/e2.py": "def g():\n    return 1\n",
}


class TestLAY002DeclaredLayering:
    def test_undeclared_edge_and_independent_sibling_flagged(self):
        findings = project(
            LAYERED_SOURCES, ["LAY002"], config=parse_config(LAYER_SPEC)
        )
        by_path = {f.path: f for f in findings}
        assert rule_ids(findings) == ["LAY002", "LAY002"]
        engine = by_path["src/repro/core/engine.py"]
        assert engine.line == 2
        assert "may_import" in engine.message
        sibling = by_path["src/repro/experiments/e1.py"]
        assert "independent layer 'drivers'" in sibling.message

    def test_lazy_import_is_a_sanctioned_deferred_edge(self):
        sources = dict(LAYERED_SOURCES)
        sources["src/repro/core/engine.py"] = (
            "from repro.rng import SEED\n"
            "\n"
            "\n"
            "def run():\n"
            "    from repro.experiments.e1 import f\n"
            "    return f()\n"
        )
        sources["src/repro/experiments/e1.py"] = "def f():\n    return 1\n"
        findings = project(
            sources, ["LAY002"], config=parse_config(LAYER_SPEC)
        )
        assert findings == []

    def test_unassigned_module_flagged(self):
        sources = {"src/repro/stray.py": "X = 1\n", **LAYERED_SOURCES}
        sources["src/repro/core/engine.py"] = "from repro.rng import SEED\n"
        sources["src/repro/experiments/e1.py"] = "def f():\n    return 1\n"
        findings = project(
            sources, ["LAY002"], config=parse_config(LAYER_SPEC)
        )
        assert rule_ids(findings) == ["LAY002"]
        assert findings[0].path == "src/repro/stray.py"
        assert "not assigned to any declared layer" in findings[0].message

    def test_silent_without_a_layer_spec(self):
        findings = project(LAYERED_SOURCES, ["LAY002"], config=LintConfig())
        assert findings == []


class TestLAY003ImportCycles:
    def test_cycle_reported_once(self):
        findings = project(
            {
                "src/repro/a.py": "from repro.b import g\n\n\ndef f():\n    return g()\n",
                "src/repro/b.py": "from repro.a import f\n\n\ndef g():\n    return f()\n",
            },
            ["LAY003"],
        )
        assert rule_ids(findings) == ["LAY003"]
        assert (
            "import cycle: repro.a -> repro.b -> repro.a"
            in findings[0].message
        )

    def test_acyclic_graph_is_fine(self):
        findings = project(
            {
                "src/repro/a.py": "from repro.b import g\n\n\ndef f():\n    return g()\n",
                "src/repro/b.py": "def g():\n    return 1\n",
            },
            ["LAY003"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Substrate: project model, import graph, symbol table
# ---------------------------------------------------------------------------


class TestProjectModel:
    def test_import_graph_eager_vs_lazy(self):
        model = build_project(
            [],
            sources={
                "src/repro/a.py": (
                    "from repro.b import g\n"
                    "\n"
                    "\n"
                    "def f():\n"
                    "    from repro.c import h\n"
                    "    return g() + h()\n"
                ),
                "src/repro/b.py": "def g():\n    return 1\n",
                "src/repro/c.py": "def h():\n    return 2\n",
            },
        )
        eager = model.import_graph()
        assert eager["repro.a"] == {"repro.b"}
        full = model.import_graph(include_lazy=True)
        assert full["repro.a"] == {"repro.b", "repro.c"}

    def test_resolve_name_follows_package_reexport(self):
        model = build_project(
            [],
            sources={
                "src/repro/core/__init__.py": (
                    "from repro.core.engine import run\n"
                ),
                "src/repro/core/engine.py": "def run():\n    return 1\n",
                "src/repro/user.py": "from repro.core import run\n",
            },
        )
        assert model.resolve_name("repro.user", "run") == (
            "repro.core.engine",
            "run",
        )

    def test_symbol_table_indexes_methods_and_mutable_globals(self):
        model = build_project(
            [],
            sources={
                "src/repro/core/state.py": (
                    "CACHE = {}\n"
                    "\n"
                    "\n"
                    "class OpinionState:\n"
                    "    def apply(self, update):\n"
                    "        return update\n"
                ),
            },
        )
        info = model.modules["repro.core.state"]
        assert "CACHE" in info.mutable_globals
        assert "OpinionState.apply" in info.functions
        fn = model.function("repro.core.state", "OpinionState.apply")
        assert fn is not None and fn.ref == "repro.core.state:OpinionState.apply"

    def test_fingerprint_tracks_content(self):
        base = {"src/repro/a.py": "X = 1\n"}
        model_a = build_project([], sources=base)
        model_b = build_project([], sources=base)
        assert model_a.fingerprint() == model_b.fingerprint()
        model_c = build_project([], sources={"src/repro/a.py": "X = 2\n"})
        assert model_c.fingerprint() != model_a.fingerprint()

    def test_strongly_connected_components(self):
        graph = {"a": {"b"}, "b": {"a"}, "c": {"a"}}
        components = strongly_connected_components(graph)
        assert {frozenset(c) for c in components if len(c) > 1} == {
            frozenset({"a", "b"})
        }


# ---------------------------------------------------------------------------
# Config: layer-spec parsing (both TOML paths)
# ---------------------------------------------------------------------------


class TestLayerConfig:
    def test_parse_config_reads_layers(self):
        config = parse_config(LAYER_SPEC)
        assert [layer.name for layer in config.layers] == [
            "foundation",
            "core",
            "drivers",
        ]
        assert config.layers[2].independent is True

    def test_layer_of_first_match_wins(self):
        config = parse_config(LAYER_SPEC)
        assert config.layer_of("repro.experiments.e1").name == "drivers"
        assert config.layer_of("repro.core.engine").name == "core"
        assert config.layer_of("repro.unassigned") is None

    def test_unknown_may_import_rejected(self):
        bad = LAYER_SPEC.replace(
            'may_import = ["foundation"]', 'may_import = ["nope"]'
        )
        with pytest.raises(LintConfigError):
            parse_config(bad)

    def test_fingerprint_tracks_spec_changes(self):
        a = parse_config(LAYER_SPEC)
        b = parse_config(LAYER_SPEC.replace("independent = true", ""))
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == parse_config(LAYER_SPEC).fingerprint()

    def test_minimal_toml_parser_reads_the_spec(self):
        from repro.devtools.config import _parse_minimal_toml

        data = _parse_minimal_toml(LAYER_SPEC)
        layers = data["tool"]["div-repro"]["lint"]["layers"]
        assert [entry["name"] for entry in layers] == [
            "foundation",
            "core",
            "drivers",
        ]
        assert layers[1]["may_import"] == ["foundation"]
        assert layers[2]["independent"] is True

    def test_minimal_toml_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        from repro.devtools.config import _parse_minimal_toml

        mine = _parse_minimal_toml(LAYER_SPEC)
        theirs = tomllib.loads(LAYER_SPEC)
        assert (
            mine["tool"]["div-repro"]["lint"]
            == theirs["tool"]["div-repro"]["lint"]
        )


# ---------------------------------------------------------------------------
# Rule routing: supersession and suppression aliasing
# ---------------------------------------------------------------------------


class TestRuleRouting:
    def test_superseded_rules_map_to_successors(self):
        assert superseded_rule_ids() == {
            "RNG001": "DET002",
            "RNG002": "DET001",
            "LAY001": "LAY002",
        }

    def test_default_split_excludes_superseded_per_file_rules(self):
        file_ids, analyzer_ids = split_rule_ids(None)
        assert not set(file_ids) & {"RNG001", "RNG002", "LAY001"}
        for rule_id in ("PAR001", "DET001", "KER002", "LAY002", "LAY003"):
            assert rule_id in analyzer_ids

    def test_explicit_superseded_rule_still_runs(self):
        file_ids, analyzer_ids = split_rule_ids(["RNG001", "PAR002"])
        assert file_ids == ["RNG001"]
        assert analyzer_ids == ["PAR002"]

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            split_rule_ids(["NOPE"])

    def test_suppression_aliases_cover_active_analyzers(self):
        assert suppression_aliases(["DET001", "DET002", "LAY002"]) == {
            "DET001": {"RNG002"},
            "DET002": {"RNG001"},
            "LAY002": {"LAY001"},
        }
        assert suppression_aliases(["PAR001"]) == {}


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------


class TestIncrementalCache:
    @staticmethod
    def _write_tree(tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text(
            "def f(a=[]):\n    return a\n"
        )

    def test_warm_run_skips_unchanged_files(self, tmp_path):
        self._write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        kwargs = dict(
            config=LintConfig(), cache_path=cache, rule_ids=["COR001"]
        )
        cold = lint_project([tmp_path], **kwargs)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        warm = lint_project([tmp_path], **kwargs)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_changed_file_is_relinted(self, tmp_path):
        self._write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        kwargs = dict(
            config=LintConfig(), cache_path=cache, rule_ids=["COR001"]
        )
        cold = lint_project([tmp_path], **kwargs)
        assert rule_ids(cold.findings) == ["COR001"]
        (tmp_path / "bad.py").write_text("def f(a=None):\n    return a\n")
        warm = lint_project([tmp_path], **kwargs)
        assert (warm.cache_hits, warm.cache_misses) == (1, 1)
        assert warm.findings == []

    def test_project_analyzers_cached_on_warm_run(self, tmp_path):
        self._write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        kwargs = dict(
            config=LintConfig(), cache_path=cache, rule_ids=["DET002"]
        )
        cold = lint_project([tmp_path], **kwargs)
        assert cold.analyzers_cached is False
        warm = lint_project([tmp_path], **kwargs)
        assert warm.analyzers_cached is True

    def test_rule_selection_change_invalidates_cache(self, tmp_path):
        self._write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_project(
            [tmp_path],
            config=LintConfig(),
            cache_path=cache,
            rule_ids=["COR001"],
        )
        rerun = lint_project(
            [tmp_path],
            config=LintConfig(),
            cache_path=cache,
            rule_ids=["COR001", "OBS001"],
        )
        assert rerun.cache_hits == 0

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        self._write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        run = lint_project(
            [tmp_path],
            config=LintConfig(),
            cache_path=cache,
            rule_ids=["COR001"],
        )
        assert rule_ids(run.findings) == ["COR001"]
        assert run.cache_hits == 0


# ---------------------------------------------------------------------------
# Suppression baseline
# ---------------------------------------------------------------------------


class TestBaselineWorkflow:
    def test_update_then_filter(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n")
        baseline = tmp_path / "lint-baseline.json"
        kwargs = dict(
            config=LintConfig(),
            use_cache=False,
            rule_ids=["COR001"],
            baseline_path=baseline,
        )
        first = lint_project([bad], update_baseline=True, **kwargs)
        assert first.findings == []
        assert rule_ids(first.baselined) == ["COR001"]
        entries = json.loads(baseline.read_text())["entries"]
        assert len(entries) == 1

        second = lint_project([bad], **kwargs)
        assert second.findings == []
        assert rule_ids(second.baselined) == ["COR001"]

    def test_justifications_survive_updates(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n")
        baseline = tmp_path / "lint-baseline.json"
        kwargs = dict(
            config=LintConfig(),
            use_cache=False,
            rule_ids=["COR001"],
            baseline_path=baseline,
        )
        lint_project([bad], update_baseline=True, **kwargs)
        data = json.loads(baseline.read_text())
        data["entries"][0]["justification"] = "kept on purpose"
        baseline.write_text(json.dumps(data))
        lint_project([bad], update_baseline=True, **kwargs)
        refreshed = json.loads(baseline.read_text())["entries"]
        assert refreshed[0]["justification"] == "kept on purpose"

    def test_fixed_finding_reappears_after_edit(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n")
        baseline = tmp_path / "lint-baseline.json"
        kwargs = dict(
            config=LintConfig(),
            use_cache=False,
            rule_ids=["COR001"],
            baseline_path=baseline,
        )
        lint_project([bad], update_baseline=True, **kwargs)
        # A *different* violation must not hide behind the old entry.
        bad.write_text("def f(b={}):\n    return b\n")
        rerun = lint_project([bad], **kwargs)
        assert rule_ids(rerun.findings) == ["COR001"]
        assert rerun.baselined == []


# ---------------------------------------------------------------------------
# SARIF reporter
# ---------------------------------------------------------------------------


class TestSarif:
    FINDINGS = [
        Finding(
            "DET002",
            Severity.ERROR,
            "src/repro/analysis/a.py",
            5,
            11,
            "global-state randomness",
            suggestion="thread a Generator through",
        ),
        Finding(
            "PAR001",
            Severity.WARNING,
            "src/repro/parallel.py",
            9,
            4,
            "worker mutates module state",
        ),
    ]

    def test_log_structure(self):
        log = sarif_log(
            self.FINDINGS,
            rule_docs={"DET002": "no global randomness"},
            tool_version="1.0",
            fingerprint_of=lambda f: f"fp-{f.rule_id}",
        )
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "div-repro-lint"
        assert {rule["id"] for rule in driver["rules"]} == {
            "DET002",
            "PAR001",
        }
        result = run["results"][0]
        assert result["ruleId"] == "DET002"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert (region["startLine"], region["startColumn"]) == (5, 12)
        assert result["partialFingerprints"]["divReproLint/v1"] == "fp-DET002"
        assert driver["rules"][result["ruleIndex"]]["id"] == "DET002"

    def test_round_trip(self):
        log = sarif_log(self.FINDINGS)
        recovered = findings_from_sarif(log)
        assert recovered == sorted(self.FINDINGS, key=Finding.sort_key)

    def test_round_trip_through_json(self):
        log = json.loads(json.dumps(sarif_log(self.FINDINGS)))
        assert findings_from_sarif(log) == sorted(
            self.FINDINGS, key=Finding.sort_key
        )


# ---------------------------------------------------------------------------
# CLI wiring for the project tier
# ---------------------------------------------------------------------------


class TestProjectCli:
    def test_sarif_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(2)\n")
        code = cli_main(
            ["lint", "--no-cache", "--format", "sarif", str(bad)]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert {r["ruleId"] for r in log["runs"][0]["results"]} == {"DET002"}

    def test_update_baseline_flow(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n")
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                [
                    "lint",
                    "--no-cache",
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                    str(bad),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "baseline" in out
        assert baseline.is_file()
        # Second run: the baseline file now absorbs the finding.
        assert (
            cli_main(
                ["lint", "--no-cache", "--baseline", str(baseline), str(bad)]
            )
            == 0
        )

    def test_cache_flag_round_trip(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        assert (
            cli_main(["lint", "--cache", str(cache), str(good)]) == 0
        )
        assert cache.is_file()
        capsys.readouterr()
        assert (
            cli_main(["lint", "--cache", str(cache), str(good)]) == 0
        )
        assert "clean" in capsys.readouterr().out

    def test_list_rules_shows_analyzers_and_supersession(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("PAR001", "DET001", "KER002", "LAY002", "LAY003"):
            assert rule_id in out
        assert "superseded" in out
