"""Unit tests for repro.core.dynamics — one update rule at a time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OpinionState
from repro.core.dynamics import (
    BestOfThree,
    BestOfTwo,
    IncrementalVoting,
    LoadBalancing,
    MedianVoting,
    PullVoting,
    PushVoting,
    make_dynamics,
)
from repro.errors import ProcessError
from repro.graphs import complete_graph, path_graph


@pytest.fixture
def k4_state():
    return OpinionState(complete_graph(4), [1, 3, 3, 5])


class TestIncrementalVoting:
    """Eq. (1): X'_v = X_v + sign(X_w - X_v)."""

    def test_moves_up(self, k4_state, rng):
        assert IncrementalVoting().step(k4_state, 0, 3, rng)
        assert k4_state.value(0) == 2

    def test_moves_down(self, k4_state, rng):
        assert IncrementalVoting().step(k4_state, 3, 0, rng)
        assert k4_state.value(3) == 4

    def test_equal_no_change(self, k4_state, rng):
        assert not IncrementalVoting().step(k4_state, 1, 2, rng)
        assert k4_state.value(1) == 3

    def test_observed_vertex_never_changes(self, k4_state, rng):
        IncrementalVoting().step(k4_state, 0, 3, rng)
        assert k4_state.value(3) == 5

    def test_single_unit_even_for_large_gap(self, k4_state, rng):
        IncrementalVoting().step(k4_state, 0, 3, rng)  # 1 observes 5
        assert k4_state.value(0) == 2  # +1, not jump


class TestPullAndPush:
    def test_pull_adopts(self, k4_state, rng):
        assert PullVoting().step(k4_state, 0, 3, rng)
        assert k4_state.value(0) == 5

    def test_pull_same_noop(self, k4_state, rng):
        assert not PullVoting().step(k4_state, 1, 2, rng)

    def test_push_imposes(self, k4_state, rng):
        assert PushVoting().step(k4_state, 0, 3, rng)
        assert k4_state.value(3) == 1
        assert k4_state.value(0) == 1


class TestMedianVoting:
    def test_median_of_three(self, rng):
        # On K_4 with values {1, 3, 3, 5}: vertex 0 (value 1) sampling two
        # vertices with value 3 must move to median(1, 3, 3) = 3.
        state = OpinionState(complete_graph(4), [1, 3, 3, 5])
        changed = MedianVoting().step(state, 0, 1, rng)
        # The second sample is random; median is 3 unless it sampled 5,
        # in which case median(1, 3, 5) = 3 as well.
        assert changed
        assert state.value(0) == 3

    def test_stays_within_range(self, rng):
        state = OpinionState(complete_graph(6), [1, 1, 2, 2, 9, 9])
        for _ in range(200):
            v = int(rng.integers(0, 6))
            nbrs = state.graph.neighbors(v)
            w = int(nbrs[rng.integers(0, nbrs.size)])
            MedianVoting().step(state, v, w, rng)
            assert 1 <= state.value(v) <= 9


class TestBestOfK:
    def test_best_of_two_needs_agreement(self, rng):
        # Path 0-1-2 with v=1: both neighbours hold 7, so two samples agree.
        state = OpinionState(path_graph(3), [7, 1, 7])
        assert BestOfTwo().step(state, 1, 0, rng)
        assert state.value(1) == 7

    def test_best_of_two_disagreement_keeps(self, rng):
        state = OpinionState(path_graph(3), [7, 1, 3])
        # Samples are {7,3}, {7,7}, {3,3}, {3,7}; only agreement adopts.
        BestOfTwo().step(state, 1, 0, rng)
        assert state.value(1) in (1, 3, 7)

    def test_best_of_three_majority(self, rng):
        state = OpinionState(path_graph(3), [4, 1, 4])
        assert BestOfThree().step(state, 1, 0, rng)
        assert state.value(1) == 4


class TestLoadBalancing:
    def test_averages_floor_ceil(self, rng):
        state = OpinionState(complete_graph(4), [1, 6, 3, 3])
        assert LoadBalancing().step(state, 0, 1, rng)
        values = sorted([state.value(0), state.value(1)])
        assert values == [3, 4]
        assert state.value(0) == 3  # smaller endpoint got the floor

    def test_conserves_total(self, rng):
        state = OpinionState(complete_graph(4), [1, 6, 3, 3])
        before = state.total_sum
        for _ in range(50):
            v = int(rng.integers(0, 4))
            w = (v + 1 + int(rng.integers(0, 3))) % 4
            LoadBalancing().step(state, v, w, rng)
        assert state.total_sum == before

    def test_adjacent_values_absorbing(self, rng):
        state = OpinionState(complete_graph(2), [3, 4])
        assert not LoadBalancing().step(state, 0, 1, rng)
        assert not LoadBalancing().step(state, 1, 0, rng)
        assert state.value(0) == 3 and state.value(1) == 4


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("div", IncrementalVoting),
            ("pull", PullVoting),
            ("push", PushVoting),
            ("median", MedianVoting),
            ("best_of_two", BestOfTwo),
            ("best_of_three", BestOfThree),
            ("load_balancing", LoadBalancing),
        ],
    )
    def test_by_name(self, name, cls):
        assert isinstance(make_dynamics(name), cls)

    def test_instance_passthrough(self):
        dynamics = IncrementalVoting()
        assert make_dynamics(dynamics) is dynamics

    def test_unknown_rejected(self):
        with pytest.raises(ProcessError):
            make_dynamics("telepathy")
        with pytest.raises(ProcessError):
            make_dynamics(42)
