"""The exception hierarchy: everything derives from ReproError."""

from __future__ import annotations

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.GraphError,
        errors.GraphConstructionError,
        errors.DisconnectedGraphError,
        errors.ProcessError,
        errors.InvalidOpinionsError,
        errors.StoppingConditionError,
        errors.ExperimentError,
        errors.AnalysisError,
        errors.ParallelExecutionError,
        errors.FaultSpecError,
        errors.CheckpointError,
        errors.CheckpointCorruptError,
        errors.CheckpointMismatchError,
    ],
)
def test_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_specific_parents():
    assert issubclass(errors.GraphConstructionError, errors.GraphError)
    assert issubclass(errors.InvalidOpinionsError, errors.ProcessError)
    assert issubclass(errors.StoppingConditionError, errors.ProcessError)
    # Parallel infrastructure failures stay catchable as AnalysisError.
    assert issubclass(errors.ParallelExecutionError, errors.AnalysisError)
    assert issubclass(errors.CheckpointCorruptError, errors.CheckpointError)
    assert issubclass(errors.CheckpointMismatchError, errors.CheckpointError)
