"""Unit tests for repro.analysis.scaling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import fit_power_law, loglog_slope, ratio_to_bound
from repro.errors import AnalysisError


class TestPowerLaw:
    def test_exact_recovery(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x**1.7 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.7)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(160) == pytest.approx(3 * 160**1.7)

    def test_noisy_recovery(self, rng):
        xs = np.array([100, 200, 400, 800, 1600])
        ys = 2 * xs**1.5 * np.exp(rng.normal(0, 0.05, size=5))
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=0.2)
        assert fit.r_squared > 0.95

    def test_constant_data(self):
        fit = fit_power_law([1, 2, 4], [5, 5, 5])
        assert fit.exponent == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_loglog_slope_shorthand(self):
        assert loglog_slope([1, 10], [1, 100]) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fit_power_law([1], [1])
        with pytest.raises(AnalysisError):
            fit_power_law([1, 2], [1, 2, 3])
        with pytest.raises(AnalysisError):
            fit_power_law([0, 1], [1, 2])
        with pytest.raises(AnalysisError):
            fit_power_law([1, 2], [1, -2])


class TestRatioToBound:
    def test_max_ratio(self):
        assert ratio_to_bound([1, 4, 9], [2, 2, 3]) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ratio_to_bound([], [])
        with pytest.raises(AnalysisError):
            ratio_to_bound([1, 2], [1])
        with pytest.raises(AnalysisError):
            ratio_to_bound([1], [0])
