"""Tests for campaign telemetry feeds, the merged timeline, and the CLI
surface built on them (``campaign watch``, ``timeline report``,
``bench compare``).

Covers the accounting rules (completed vs executed vs peer-loaded vs
duplicates), merge determinism over shuffled and torn feeds, the
heartbeat delta scheme reconstructing cumulative metrics exactly, the
telemetry-drop fault, the zero-overhead contract when telemetry is off,
a real two-launcher journal campaign reconciled against the journal,
and the bench-compare perf gate's edge cases.
"""

from __future__ import annotations

import json
import multiprocessing
import time
import warnings

import pytest

from repro.analysis.montecarlo import run_trials
from repro.checkpoint import CheckpointJournal, campaign
from repro.errors import BenchCompareError, ExperimentError, TelemetryError
from repro.faults import FaultPlan
from repro.cli import main as cli_main
from repro.obs.bench import BenchDelta, compare_snapshots, load_snapshot
from repro.obs.metrics import active_metrics, collecting
from repro.obs.telemetry import (
    FEED_FORMAT,
    TELEMETRY_DIRNAME,
    TelemetryFeed,
    active_telemetry,
    suspended,
    telemetering,
)
from repro.obs.timeline import (
    LauncherTimeline,
    load_timeline,
    read_feed,
    resolve_telemetry_dir,
)


def counting_trial(index, rng):
    registry = active_metrics()
    if registry is not None:
        registry.inc("test.trials")
        registry.observe("test.value", float(index))
    return (index, int(rng.integers(0, 1 << 30)))


def probe_trial(index, rng):
    """Returns whether the worker saw an ambient feed (it never should)."""
    return (index, active_telemetry() is not None)


def journal_trial(index, rng):
    return (index, int(rng.integers(0, 1 << 30)))


def _open_journal(directory):
    journal = CheckpointJournal(directory)
    journal.open(
        fingerprint="timeline-test",
        resume=True,
        experiment_id="E99",
        scale="quick",
        seed=0,
    )
    return journal


def _telemetered_launcher(directory, trials, seed, errors):
    """One cooperative launcher streaming telemetry (fork-started)."""
    try:
        journal = _open_journal(directory)
        feed = TelemetryFeed(
            directory / TELEMETRY_DIRNAME, heartbeat_interval=0.05
        )
        with collecting(), telemetering(feed):
            with campaign(journal, executor="journal"):
                run_trials(
                    trials, journal_trial, seed=seed, workers=2, chunk_size=4
                )
    except BaseException as exc:  # pragma: no cover - failure reporting
        errors.put(repr(exc))


def write_feed(directory, name, records):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return path


def hand_built_campaign(root, age=120.0):
    """Two hand-written launcher feeds: alpha finished, beta went silent.

    Batch ``b0`` has size 4; indices {0, 1, 2} are completed (beta's
    record for index 1 is a duplicate), so the campaign reads 3/4 done
    with one stale launcher.
    """
    now = time.time()
    old = now - age
    telemetry = root / TELEMETRY_DIRNAME
    write_feed(
        telemetry,
        "a-alpha.jsonl",
        [
            {
                "seq": 0, "t": old, "kind": "hello", "format": FEED_FORMAT,
                "version": 1, "launcher": "alpha", "host": "h", "pid": 1,
                "heartbeat_interval": 0.1,
            },
            {
                "seq": 1, "t": old + 0.1, "kind": "batch.begin",
                "batch": "b0", "batch_kind": "trials", "size": 4, "cached": 0,
            },
            {
                "seq": 2, "t": old + 0.2, "kind": "trial", "batch": "b0",
                "index": 0, "seconds": 0.05, "worker": "w0",
            },
            {
                "seq": 3, "t": old + 0.3, "kind": "trial", "batch": "b0",
                "index": 1, "seconds": 0.07, "worker": "w0",
            },
            {
                "seq": 4, "t": old + 0.4, "kind": "batch.end", "batch": "b0",
                "executor": "journal", "seconds": 0.4, "trials": 2,
            },
            {"seq": 5, "t": old + 0.5, "kind": "bye", "dropped": 0},
        ],
    )
    write_feed(
        telemetry,
        "b-beta.jsonl",
        [
            {
                "seq": 0, "t": old, "kind": "hello", "format": FEED_FORMAT,
                "version": 1, "launcher": "beta", "host": "h", "pid": 2,
                "heartbeat_interval": 0.1,
            },
            {
                "seq": 1, "t": old + 0.2, "kind": "lease.claim",
                "batch": "b0", "chunk": 1, "size": 2,
            },
            {
                "seq": 2, "t": old + 0.25, "kind": "trial", "batch": "b0",
                "index": 2, "seconds": 0.04, "worker": "w1",
            },
            {
                "seq": 3, "t": old + 0.3, "kind": "trial", "batch": "b0",
                "index": 1, "seconds": 0.06, "worker": "peer",
            },
        ],
    )
    return root


class TestFeed:
    def test_hello_first_bye_last_seq_monotonic(self, tmp_path):
        feed = TelemetryFeed(tmp_path / TELEMETRY_DIRNAME, experiment="E99")
        feed.batch_begin("b0", "trials", 2)
        feed.trial(0, 0.01, "w")
        feed.trial(1, 0.02, "w")
        feed.batch_end("b0", "serial", 0.05, 2)
        feed.close()
        records, torn = read_feed(feed.path)
        assert torn == 0
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert records[0]["kind"] == "hello"
        assert records[0]["format"] == FEED_FORMAT
        assert records[0]["experiment"] == "E99"
        assert records[-1]["kind"] == "bye"

    def test_close_is_idempotent(self, tmp_path):
        feed = TelemetryFeed(tmp_path / TELEMETRY_DIRNAME)
        feed.close()
        feed.close()
        records, _ = read_feed(feed.path)
        assert [r["kind"] for r in records] == ["hello", "bye"]

    def test_anonymous_batch_key_is_deterministic(self, tmp_path):
        feed = TelemetryFeed(tmp_path / TELEMETRY_DIRNAME)
        key = feed.batch_begin(None, "trials", 8)
        assert key == "anon-0000-trials-8"

    def test_heartbeat_deltas_reconstruct_metrics_exactly(self, tmp_path):
        values = [2.0, 4.0, 5.0, 1.0, 8.0]
        with collecting() as registry:
            feed = TelemetryFeed(
                tmp_path / TELEMETRY_DIRNAME, heartbeat_interval=0.0
            )
            with telemetering(feed):
                feed.batch_begin("b0", "trials", len(values))
                for index, value in enumerate(values):
                    registry.inc("trials.done")
                    registry.observe("trial.seconds", value)
                    # Every trial call flushes a heartbeat (interval 0).
                    feed.trial(index, value, "w")
            expected = registry.snapshot()
        timeline = load_timeline(tmp_path)
        launcher = timeline.launchers[feed.launcher]
        assert launcher.closed
        assert launcher.metrics.counters["trials.done"] == len(values)
        merged = launcher.metrics.histograms["trial.seconds"]
        reference = expected.histograms["trial.seconds"]
        assert merged.count == reference.count
        assert merged.total == pytest.approx(reference.total)
        assert merged.minimum == reference.minimum
        assert merged.maximum == reference.maximum
        # The sum-of-squares moment merges exactly, so stddev is exact.
        assert merged.stddev == pytest.approx(reference.stddev)

    def test_drop_indices_suppress_trial_records(self, tmp_path):
        feed = TelemetryFeed(
            tmp_path / TELEMETRY_DIRNAME, drop_indices=(1, 3)
        )
        feed.batch_begin("b0", "trials", 4)
        for index in range(4):
            feed.trial(index, 0.01, "w")
        feed.close()
        records, _ = read_feed(feed.path)
        trial_indices = [r["index"] for r in records if r["kind"] == "trial"]
        assert trial_indices == [0, 2]
        assert records[-1]["kind"] == "bye"
        assert records[-1]["dropped"] == 2

    def test_failing_filesystem_disables_feed_with_warning(
        self, tmp_path, monkeypatch
    ):
        import repro.io as io_module

        feed = TelemetryFeed(tmp_path / TELEMETRY_DIRNAME)

        def explode(path, record):
            raise OSError("disk full")

        monkeypatch.setattr(io_module, "append_jsonl_line", explode)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            feed.trial(0, 0.01, "w")
            feed.trial(1, 0.01, "w")  # silent: feed already disabled
            feed.close()
        messages = [
            str(w.message)
            for w in caught
            if issubclass(w.category, RuntimeWarning)
        ]
        assert len(messages) == 1
        assert "stopped writing" in messages[0]
        # Only the hello made it to disk; no bye after the failure.
        monkeypatch.undo()
        records, _ = read_feed(feed.path)
        assert [r["kind"] for r in records] == ["hello"]

    def test_suspended_hides_ambient_feed(self, tmp_path):
        feed = TelemetryFeed(tmp_path / TELEMETRY_DIRNAME)
        with telemetering(feed):
            assert active_telemetry() is feed
            with suspended():
                assert active_telemetry() is None
            assert active_telemetry() is feed
        assert active_telemetry() is None


class TestMergeDeterminism:
    def test_shuffled_lines_and_directory_copies_merge_identically(
        self, tmp_path
    ):
        first = hand_built_campaign(tmp_path / "one")
        telemetry = first / TELEMETRY_DIRNAME
        # A copy whose feed lines are reversed on disk: same records,
        # maximally different physical order.
        second = tmp_path / "two" / TELEMETRY_DIRNAME
        second.mkdir(parents=True)
        for path in telemetry.glob("*.jsonl"):
            lines = path.read_text().splitlines()
            (second / path.name).write_text(
                "\n".join(reversed(lines)) + "\n"
            )
        one = load_timeline(first)
        two = load_timeline(tmp_path / "two")
        strip = lambda events: [dict(e) for e in events]
        assert strip(one.events) == strip(two.events)
        assert one.completed == two.completed == 3
        assert one.duplicates == two.duplicates == 1
        assert sorted(one.launchers) == sorted(two.launchers)
        for name in one.launchers:
            assert one.launchers[name].executed == two.launchers[name].executed

    def test_torn_tail_dropped_and_counted(self, tmp_path):
        root = hand_built_campaign(tmp_path / "campaign")
        telemetry = root / TELEMETRY_DIRNAME
        victim = telemetry / "b-beta.jsonl"
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "kind": "trial", "ind')  # killed mid-write
        timeline = load_timeline(root)
        assert timeline.torn_lines == 1
        assert timeline.launchers["beta"].torn_lines == 1
        assert timeline.completed == 3  # the tear costs nothing else

    def test_malformed_and_unknown_records_tolerated(self, tmp_path):
        telemetry = tmp_path / TELEMETRY_DIRNAME
        write_feed(
            telemetry,
            "feed.jsonl",
            [
                {
                    "seq": 0, "t": 1.0, "kind": "hello",
                    "format": FEED_FORMAT, "launcher": "solo",
                },
                {"seq": 1, "t": 2.0, "kind": "sparkle", "payload": 7},
            ],
        )
        with open(telemetry / "feed.jsonl", "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"t": 3.0, "no": "seq or kind"}\n')
        timeline = load_timeline(tmp_path)
        assert timeline.torn_lines == 2
        # Unknown kinds survive into the event stream (forward compat).
        assert [e["kind"] for e in timeline.events] == ["hello", "sparkle"]

    def test_empty_telemetry_dir_is_empty_timeline(self, tmp_path):
        (tmp_path / TELEMETRY_DIRNAME).mkdir()
        timeline = load_timeline(tmp_path)
        assert timeline.launchers == {}
        assert timeline.total == 0

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="no such campaign"):
            load_timeline(tmp_path / "nope")

    def test_untelemetered_campaign_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="has no telemetry/"):
            load_timeline(tmp_path)

    def test_foreign_format_feed_rejected(self, tmp_path):
        write_feed(
            tmp_path / TELEMETRY_DIRNAME,
            "feed.jsonl",
            [{"seq": 0, "t": 1.0, "kind": "hello", "format": "otherproduct"}],
        )
        with pytest.raises(TelemetryError, match="not a telemetry feed"):
            load_timeline(tmp_path)

    def test_resolve_accepts_telemetry_dir_itself(self, tmp_path):
        telemetry = tmp_path / TELEMETRY_DIRNAME
        telemetry.mkdir()
        assert resolve_telemetry_dir(telemetry) == telemetry
        assert resolve_telemetry_dir(tmp_path) == telemetry


class TestTimelineAccounting:
    def test_completed_executed_peer_and_duplicates(self, tmp_path):
        timeline = load_timeline(hand_built_campaign(tmp_path))
        assert timeline.total == 4
        assert timeline.completed == 3
        assert timeline.duplicates == 1
        alpha = timeline.launchers["alpha"]
        beta = timeline.launchers["beta"]
        assert alpha.executed == 2 and alpha.peer_loaded == 0
        assert beta.executed == 1 and beta.peer_loaded == 1
        assert alpha.busy_seconds == pytest.approx(0.12)
        assert alpha.closed and not beta.closed
        assert beta.lease_events == {"claim": 1}
        batch = timeline.batches["b0"]
        assert batch.completed_indices == {0, 1, 2}
        assert batch.remaining == 1 and not batch.done
        assert batch.finished_by == {"alpha": "journal"}

    def test_utilization_and_rates(self, tmp_path):
        timeline = load_timeline(hand_built_campaign(tmp_path))
        alpha = timeline.launchers["alpha"]
        assert alpha.wall_seconds == pytest.approx(0.5)
        assert alpha.utilization == pytest.approx(0.12 / 0.5)
        assert alpha.trials_per_second == pytest.approx(2 / 0.5)
        assert timeline.recent_rate() > 0.0
        eta = timeline.eta_seconds()
        assert eta is not None and eta > 0.0

    def test_eta_is_zero_when_done_none_when_rateless(self, tmp_path):
        telemetry = tmp_path / TELEMETRY_DIRNAME
        write_feed(
            telemetry,
            "feed.jsonl",
            [
                {
                    "seq": 0, "t": 1.0, "kind": "hello",
                    "format": FEED_FORMAT, "launcher": "solo",
                },
                {
                    "seq": 1, "t": 1.1, "kind": "batch.begin", "batch": "b0",
                    "batch_kind": "trials", "size": 1, "cached": 0,
                },
                {
                    "seq": 2, "t": 1.2, "kind": "trial", "batch": "b0",
                    "index": 0, "seconds": 0.01, "worker": "w",
                },
            ],
        )
        assert load_timeline(tmp_path).eta_seconds() == pytest.approx(0.0)
        # A campaign with remaining work but only peer-loaded records has
        # no execution rate to extrapolate from.
        write_feed(
            tmp_path / "stalled" / TELEMETRY_DIRNAME,
            "feed.jsonl",
            [
                {
                    "seq": 0, "t": 1.0, "kind": "hello",
                    "format": FEED_FORMAT, "launcher": "solo",
                },
                {
                    "seq": 1, "t": 1.1, "kind": "batch.begin", "batch": "b0",
                    "batch_kind": "trials", "size": 5, "cached": 0,
                },
            ],
        )
        assert load_timeline(tmp_path / "stalled").eta_seconds() is None

    def test_throughput_series_bins(self, tmp_path):
        timeline = load_timeline(hand_built_campaign(tmp_path))
        series = timeline.throughput_series(1.0)
        assert series == [(0.0, 3)]
        with pytest.raises(TelemetryError, match="bin width"):
            timeline.throughput_series(0.0)

    def test_stale_launcher_detection(self, tmp_path):
        timeline = load_timeline(hand_built_campaign(tmp_path))
        stale = timeline.stale_launchers(time.time())
        assert [launcher.name for launcher in stale] == ["beta"]

    def test_is_stale_unit(self):
        launcher = LauncherTimeline(
            name="x", last_seen=100.0, heartbeat_interval=1.0
        )
        assert not launcher.is_stale(now=104.0)
        assert launcher.is_stale(now=106.0)
        launcher.closed = True
        assert not launcher.is_stale(now=106.0)

    def test_cached_trials_count_toward_completion(self, tmp_path):
        write_feed(
            tmp_path / TELEMETRY_DIRNAME,
            "feed.jsonl",
            [
                {
                    "seq": 0, "t": 1.0, "kind": "hello",
                    "format": FEED_FORMAT, "launcher": "resumed",
                },
                {
                    "seq": 1, "t": 1.1, "kind": "batch.begin", "batch": "b0",
                    "batch_kind": "trials", "size": 10, "cached": 7,
                },
                {
                    "seq": 2, "t": 1.2, "kind": "trial", "batch": "b0",
                    "index": 7, "seconds": 0.01, "worker": "w",
                },
            ],
        )
        timeline = load_timeline(tmp_path)
        batch = timeline.batches["b0"]
        assert batch.completed == 8
        assert batch.remaining == 2

    def test_peer_cached_trials_never_double_count(self, tmp_path):
        # Launcher "late" opened the batch after "early" had journaled
        # trial 0, so it reports cached=1 — but early's feed also holds
        # the trial record. cached is a floor, not an additive term:
        # completion must never exceed the batch size.
        write_feed(
            tmp_path / TELEMETRY_DIRNAME,
            "early.jsonl",
            [
                {
                    "seq": 0, "t": 1.0, "kind": "hello",
                    "format": FEED_FORMAT, "launcher": "early",
                },
                {
                    "seq": 1, "t": 1.1, "kind": "batch.begin", "batch": "b0",
                    "batch_kind": "trials", "size": 2, "cached": 0,
                },
                {
                    "seq": 2, "t": 1.2, "kind": "trial", "batch": "b0",
                    "index": 0, "seconds": 0.01, "worker": "w",
                },
                {
                    "seq": 3, "t": 1.6, "kind": "trial", "batch": "b0",
                    "index": 1, "seconds": 0.01, "worker": "w",
                },
            ],
        )
        write_feed(
            tmp_path / TELEMETRY_DIRNAME,
            "late.jsonl",
            [
                {
                    "seq": 0, "t": 1.3, "kind": "hello",
                    "format": FEED_FORMAT, "launcher": "late",
                },
                {
                    "seq": 1, "t": 1.4, "kind": "batch.begin", "batch": "b0",
                    "batch_kind": "trials", "size": 2, "cached": 1,
                },
                {
                    "seq": 2, "t": 1.7, "kind": "trial", "batch": "b0",
                    "index": 1, "seconds": 0.0, "worker": "peer",
                },
            ],
        )
        timeline = load_timeline(tmp_path)
        batch = timeline.batches["b0"]
        assert batch.completed == 2
        assert batch.remaining == 0
        assert timeline.completed == timeline.total == 2

    def test_resumed_launcher_with_predecessor_feed_present(self, tmp_path):
        # A crash-resumed campaign where run 1's feed survives: run 2's
        # cached count covers exactly the trials run 1's feed records.
        write_feed(
            tmp_path / TELEMETRY_DIRNAME,
            "run1.jsonl",
            [
                {
                    "seq": 0, "t": 1.0, "kind": "hello",
                    "format": FEED_FORMAT, "launcher": "run1",
                },
                {
                    "seq": 1, "t": 1.1, "kind": "batch.begin", "batch": "b0",
                    "batch_kind": "trials", "size": 3, "cached": 0,
                },
                {
                    "seq": 2, "t": 1.2, "kind": "trial", "batch": "b0",
                    "index": 0, "seconds": 0.01, "worker": "w",
                },
            ],
        )
        write_feed(
            tmp_path / TELEMETRY_DIRNAME,
            "run2.jsonl",
            [
                {
                    "seq": 0, "t": 5.0, "kind": "hello",
                    "format": FEED_FORMAT, "launcher": "run2",
                },
                {
                    "seq": 1, "t": 5.1, "kind": "batch.begin", "batch": "b0",
                    "batch_kind": "trials", "size": 3, "cached": 1,
                },
                {
                    "seq": 2, "t": 5.2, "kind": "trial", "batch": "b0",
                    "index": 1, "seconds": 0.01, "worker": "w",
                },
            ],
        )
        timeline = load_timeline(tmp_path)
        batch = timeline.batches["b0"]
        # union {0, 1} and run2's floor 1 + |{1}| both say 2 of 3.
        assert batch.completed == 2
        assert batch.remaining == 1

    def test_cached_floor_survives_a_lost_predecessor_feed(self, tmp_path):
        # Same resume, but run 1's feed was deleted: the union alone
        # sees one trial, yet run 2's cached floor still proves two.
        write_feed(
            tmp_path / TELEMETRY_DIRNAME,
            "run2.jsonl",
            [
                {
                    "seq": 0, "t": 5.0, "kind": "hello",
                    "format": FEED_FORMAT, "launcher": "run2",
                },
                {
                    "seq": 1, "t": 5.1, "kind": "batch.begin", "batch": "b0",
                    "batch_kind": "trials", "size": 3, "cached": 1,
                },
                {
                    "seq": 2, "t": 5.2, "kind": "trial", "batch": "b0",
                    "index": 1, "seconds": 0.01, "worker": "w",
                },
            ],
        )
        timeline = load_timeline(tmp_path)
        assert timeline.batches["b0"].completed == 2


class TestAmbientIntegration:
    def test_off_means_off(self, tmp_path):
        assert active_telemetry() is None
        batch = run_trials(6, probe_trial, seed=1)
        # No worker/trial ever observed a feed, and nothing hit the disk.
        assert all(saw is False for _, saw in batch.outcomes)
        assert list(tmp_path.iterdir()) == []

    def test_serial_run_trials_streams_batch(self, tmp_path):
        with collecting():
            feed = TelemetryFeed(
                tmp_path / TELEMETRY_DIRNAME, heartbeat_interval=0.0
            )
            with telemetering(feed):
                run_trials(8, counting_trial, seed=3)
        timeline = load_timeline(tmp_path)
        assert timeline.completed == 8
        assert timeline.executed == 8
        batch = timeline.batches["anon-0000-trials-8"]
        assert batch.size == 8 and batch.done
        assert batch.finished_by[feed.launcher] == "serial"
        assert timeline.metrics.counters["test.trials"] == 8
        histogram = timeline.metrics.histograms["test.value"]
        assert histogram.count == 8
        assert histogram.minimum == pytest.approx(0.0)
        assert histogram.maximum == pytest.approx(7.0)

    def test_workers_do_not_double_report(self, tmp_path):
        feed = TelemetryFeed(tmp_path / TELEMETRY_DIRNAME)
        with telemetering(feed):
            batch = run_trials(8, probe_trial, seed=3, workers=2)
        assert all(saw is False for _, saw in batch.outcomes)
        timeline = load_timeline(tmp_path)
        assert timeline.completed == 8
        assert timeline.duplicates == 0

    def test_journal_campaign_reconciles_with_journal(self, tmp_path):
        journal = _open_journal(tmp_path / "camp")
        feed = TelemetryFeed(
            tmp_path / "camp" / TELEMETRY_DIRNAME, heartbeat_interval=0.0
        )
        with collecting(), telemetering(feed):
            with campaign(journal, executor="journal"):
                run_trials(16, journal_trial, seed=7, workers=2, chunk_size=4)
        timeline = load_timeline(tmp_path / "camp")
        journaled = sum(1 for _ in journal.iter_records())
        assert journaled == 16
        assert timeline.completed == 16
        assert timeline.executed == 16
        batch = timeline.batches["b0000-trials-16"]
        assert batch.done
        assert batch.finished_by[feed.launcher] == "journal"
        launcher = timeline.launchers[feed.launcher]
        assert launcher.lease_events["claim"] == 4
        kinds = {event["kind"] for event in timeline.events}
        assert "executor.resolved" in kinds
        assert "lease.claim" in kinds

    def test_two_concurrent_launchers_one_timeline(self, tmp_path):
        directory = tmp_path / "shared"
        _open_journal(directory)  # create the manifest up front
        context = multiprocessing.get_context("fork")
        errors = context.Queue()
        launchers = [
            context.Process(
                target=_telemetered_launcher, args=(directory, 40, 5, errors)
            )
            for _ in range(2)
        ]
        for process in launchers:
            process.start()
        for process in launchers:
            process.join(timeout=120)
            assert process.exitcode == 0
        assert errors.empty()
        timeline = load_timeline(directory)
        assert len(timeline.launchers) == 2
        assert all(l.closed for l in timeline.launchers.values())
        journaled = sum(
            1 for _ in CheckpointJournal(directory).iter_records()
        )
        assert journaled == 40
        # Every journaled trial appears exactly once as campaign
        # progress; double work and peer loads only show as contention.
        assert timeline.completed == 40
        assert timeline.total == 40
        assert timeline.executed >= 40 - timeline.duplicates

    def test_registry_requires_checkpoint_dir(self):
        from repro.experiments.registry import get_experiment

        with pytest.raises(ExperimentError, match="telemetry feeds live"):
            get_experiment("E10").run_campaign("quick", seed=0, telemetry=True)

    def test_registry_campaign_with_telemetry(self, tmp_path):
        from repro.experiments.registry import get_experiment

        get_experiment("E10").run_campaign(
            "quick", seed=0, checkpoint_dir=tmp_path, telemetry=True
        )
        timeline = load_timeline(tmp_path / "e10")
        assert timeline.total > 0
        assert timeline.completed == timeline.total
        (launcher,) = timeline.launchers.values()
        assert launcher.closed
        hello = next(e for e in timeline.events if e["kind"] == "hello")
        assert hello["experiment"] == "E10"
        assert hello["scale"] == "quick"


class TestTelemetryDropFault:
    def test_parse_and_indices(self):
        plan = FaultPlan.parse("telemetry-drop@5;telemetry-drop@2")
        assert plan.telemetry_drop_indices() == (2, 5)

    def test_drop_fault_starves_feed_not_journal(self, tmp_path):
        from repro.experiments.registry import get_experiment

        get_experiment("E10").run_campaign(
            "quick",
            seed=0,
            checkpoint_dir=tmp_path,
            telemetry=True,
            fault_plan=FaultPlan.parse("telemetry-drop@2;telemetry-drop@5"),
        )
        timeline = load_timeline(tmp_path / "e10")
        (launcher,) = timeline.launchers.values()
        assert launcher.self_dropped == 2
        # The feed lost two records; the journal lost none.
        journaled = sum(
            1 for _ in CheckpointJournal(tmp_path / "e10").iter_records()
        )
        assert timeline.completed == journaled - 2
        for batch in timeline.batches.values():
            assert {2, 5} & batch.completed_indices == set()


class TestWatchAndReportCLI:
    def test_watch_once_renders_progress_and_stale_launcher(
        self, tmp_path, capsys
    ):
        root = hand_built_campaign(tmp_path / "campaign")
        _open_journal(root)
        assert cli_main(["campaign", "watch", str(root), "--once"]) == 0
        out = capsys.readouterr().out
        assert "3/4 trial(s)" in out
        assert "launcher alpha" in out and "closed" in out
        assert "launcher beta" in out
        assert "SILENT" in out and "dead launcher?" in out
        assert "b0: 3/4" in out

    def test_watch_without_feeds_notes_missing_telemetry(
        self, tmp_path, capsys
    ):
        _open_journal(tmp_path / "camp")
        assert cli_main(["campaign", "watch", str(tmp_path / "camp"), "--once"]) == 0
        assert "no telemetry feeds yet" in capsys.readouterr().out

    def test_watch_on_noncampaign_dir_fails(self, tmp_path, capsys):
        assert cli_main(["campaign", "watch", str(tmp_path), "--once"]) == 2
        assert "no campaign" in capsys.readouterr().err

    def test_status_appends_telemetry_summary(self, tmp_path, capsys):
        root = hand_built_campaign(tmp_path / "campaign")
        _open_journal(root)
        assert cli_main(["campaign", "status", str(root)]) == 0
        out = capsys.readouterr().out
        assert "journaled trial(s)" in out  # legacy half intact
        assert "telemetry: 2 launcher feed(s) (1 closed)" in out

    def test_report_renders_tables_and_series(self, tmp_path, capsys):
        root = hand_built_campaign(tmp_path / "campaign")
        _open_journal(root)
        assert cli_main(["timeline", "report", str(root), "--bin", "1"]) == 0
        out = capsys.readouterr().out
        assert "Per-launcher utilization" in out
        assert "Per-batch progress" in out
        assert "Throughput over time" in out
        assert "alpha" in out and "beta" in out
        assert "claim:1" in out

    def test_report_on_bare_telemetry_dir(self, tmp_path, capsys):
        root = hand_built_campaign(tmp_path / "campaign")
        target = root / TELEMETRY_DIRNAME
        assert cli_main(["timeline", "report", str(target)]) == 0
        assert "2 launcher feed(s)" in capsys.readouterr().out

    def test_report_without_telemetry_fails(self, tmp_path, capsys):
        _open_journal(tmp_path / "camp")
        assert cli_main(["timeline", "report", str(tmp_path / "camp")]) == 2
        assert "has no telemetry/" in capsys.readouterr().err


def make_snapshot(means):
    return {
        "format": "div-repro-bench-snapshot",
        "benchmarks": [
            {"name": name, "mean_seconds": mean}
            for name, mean in means.items()
        ],
    }


def write_snapshot(path, means):
    path.write_text(json.dumps(make_snapshot(means)), encoding="utf-8")
    return path


class TestBenchCompare:
    def test_within_threshold_ok(self):
        deltas = compare_snapshots(
            make_snapshot({"a": 1.0}), make_snapshot({"a": 1.2})
        )
        assert [d.status for d in deltas] == ["ok"]
        assert not any(d.failed for d in deltas)

    def test_regression_and_improvement(self):
        deltas = compare_snapshots(
            make_snapshot({"slow": 1.0, "fast": 1.0}),
            make_snapshot({"slow": 1.4, "fast": 0.5}),
        )
        by_name = {d.name: d for d in deltas}
        assert by_name["slow"].status == "regressed"
        assert by_name["slow"].failed
        assert by_name["slow"].ratio == pytest.approx(1.4)
        assert by_name["fast"].status == "improved"
        assert not by_name["fast"].failed

    def test_missing_fails_new_is_informational(self):
        deltas = compare_snapshots(
            make_snapshot({"gone": 1.0}), make_snapshot({"added": 1.0})
        )
        by_name = {d.name: d for d in deltas}
        assert by_name["gone"].status == "missing" and by_name["gone"].failed
        assert by_name["added"].status == "new" and not by_name["added"].failed

    def test_noise_floor_suppresses_wild_ratios(self):
        deltas = compare_snapshots(
            make_snapshot({"tiny": 1e-6}),
            make_snapshot({"tiny": 1e-3}),
            min_seconds=1e-4,
        )
        assert [d.status for d in deltas] == ["ok"]

    def test_custom_threshold(self):
        old, new = make_snapshot({"a": 1.0}), make_snapshot({"a": 1.4})
        assert compare_snapshots(old, new, threshold=0.5)[0].status == "ok"
        assert compare_snapshots(old, new, threshold=0.3)[0].status == "regressed"

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(BenchCompareError, match="threshold"):
            compare_snapshots(make_snapshot({}), make_snapshot({}), threshold=0.0)

    def test_load_snapshot_errors(self, tmp_path):
        with pytest.raises(BenchCompareError, match="cannot read"):
            load_snapshot(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(BenchCompareError, match="not valid JSON"):
            load_snapshot(bad)
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(BenchCompareError, match="not a div-repro-bench"):
            load_snapshot(foreign)

    def test_absent_side_ratio_is_neutral(self):
        delta = BenchDelta(name="x", status="missing", old_mean=2.0)
        assert delta.ratio == pytest.approx(1.0)

    def test_cli_ok_and_regressed_exit_codes(self, tmp_path, capsys):
        old = write_snapshot(tmp_path / "old.json", {"a": 1.0, "b": 2.0})
        good = write_snapshot(tmp_path / "good.json", {"a": 1.05, "b": 1.9})
        bad = write_snapshot(tmp_path / "bad.json", {"a": 1.5, "b": 2.0})
        assert cli_main(["bench", "compare", str(old), str(good)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)/missing" in out
        assert cli_main(["bench", "compare", str(old), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "a" in out
        assert "1 regression(s)/missing" in out

    def test_cli_missing_benchmark_fails(self, tmp_path, capsys):
        old = write_snapshot(tmp_path / "old.json", {"a": 1.0, "b": 2.0})
        new = write_snapshot(tmp_path / "new.json", {"a": 1.0})
        assert cli_main(["bench", "compare", str(old), str(new)]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_cli_threshold_flag(self, tmp_path, capsys):
        old = write_snapshot(tmp_path / "old.json", {"a": 1.0})
        new = write_snapshot(tmp_path / "new.json", {"a": 1.4})
        assert (
            cli_main(
                ["bench", "compare", str(old), str(new), "--threshold", "0.5"]
            )
            == 0
        )
        capsys.readouterr()

    def test_cli_malformed_snapshot_is_usage_error(self, tmp_path, capsys):
        old = write_snapshot(tmp_path / "old.json", {"a": 1.0})
        assert cli_main(["bench", "compare", str(old), str(tmp_path / "x.json")]) == 2
        assert "div-repro: error" in capsys.readouterr().err
