"""Unit tests for the count-based K_n engine (repro.core.fast_complete)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.montecarlo import run_trials
from repro.core.fast_complete import run_div_complete
from repro.errors import ProcessError


class TestValidation:
    def test_counts_must_sum_to_n(self):
        with pytest.raises(ProcessError):
            run_div_complete(10, {1: 3, 2: 3})

    def test_negative_counts_rejected(self):
        with pytest.raises(ProcessError):
            run_div_complete(2, {1: 3, 2: -1})

    def test_n_too_small(self):
        with pytest.raises(ProcessError):
            run_div_complete(1, {1: 1})

    def test_unknown_stop(self):
        with pytest.raises(ProcessError):
            run_div_complete(4, {1: 4}, stop="quorum")

    def test_empty_counts(self):
        with pytest.raises(ProcessError):
            run_div_complete(4, {1: 0, 2: 0})


class TestBasicRuns:
    def test_consensus_from_consensus(self):
        result = run_div_complete(10, {4: 10}, rng=0)
        assert result.steps == 0
        assert result.winner == 4
        assert result.stop_reason == "consensus"
        assert result.two_adjacent_step == 0

    def test_two_adjacent_start_detected(self):
        result = run_div_complete(10, {4: 5, 5: 5}, stop="two_adjacent", rng=0)
        assert result.steps == 0
        assert result.stop_reason == "two_adjacent"
        assert result.support == [4, 5]

    def test_reaches_consensus(self):
        result = run_div_complete(50, {1: 20, 2: 10, 5: 20}, rng=1)
        assert result.stop_reason == "consensus"
        assert result.winner in (1, 2, 3, 4, 5)
        assert result.two_adjacent_step is not None
        assert result.two_adjacent_step <= result.steps

    def test_max_steps(self):
        result = run_div_complete(50, {1: 25, 9: 25}, max_steps=10, rng=1)
        assert result.steps == 10
        assert result.stop_reason == "max_steps"
        assert result.winner is None

    def test_negative_and_sparse_opinions(self):
        result = run_div_complete(30, {-2: 15, 3: 15}, rng=2)
        assert result.stop_reason == "consensus"
        assert -2 <= result.winner <= 3

    def test_weight_trace(self):
        result = run_div_complete(
            40, {1: 20, 5: 20}, rng=3, weight_interval=100, stop="two_adjacent"
        )
        assert result.weight_steps[0] == 0
        assert result.weights[0] == 20 * 1 + 20 * 5
        # Weights move by at most 1 per step.
        diffs = np.abs(np.diff(result.weights))
        gaps = np.diff(result.weight_steps)
        assert np.all(diffs <= gaps)

    def test_deterministic_given_seed(self):
        a = run_div_complete(60, {1: 30, 4: 30}, rng=7)
        b = run_div_complete(60, {1: 30, 4: 30}, rng=7)
        assert (a.winner, a.steps) == (b.winner, b.steps)


class TestSingleStepLaw:
    def test_one_step_transition_probabilities(self):
        # From {1: 1, 3: n-1} on K_n, one step moves the lone 1-holder up
        # (to counts {2:1, 3:n-1}) iff it is selected: probability 1/n.
        # A 3-holder moves down (to {1:1, 2:1, 3:n-2}) iff a 3-holder is
        # selected AND observes the 1-holder: (n-1)/n * 1/(n-1) = 1/n.
        n, trials = 12, 4000
        up = down = unchanged = 0
        for seed in range(trials):
            result = run_div_complete(
                n, {1: 1, 3: n - 1}, max_steps=1, rng=seed
            )
            if result.counts == {2: 1, 3: n - 1}:
                up += 1
            elif result.counts == {1: 1, 2: 1, 3: n - 2}:
                down += 1
            elif result.counts == {1: 1, 3: n - 1}:
                unchanged += 1
        assert up + down + unchanged == trials
        assert up / trials == pytest.approx(1 / n, abs=0.02)
        assert down / trials == pytest.approx(1 / n, abs=0.02)
        assert unchanged / trials == pytest.approx(1 - 2 / n, abs=0.03)


class TestAgainstTheory:
    def test_two_opinion_winning_probability(self):
        # With only {0,1} the process is two-opinion pull voting:
        # P(1 wins) = N_1/n exactly (eq. (3)).
        n, ones = 30, 9

        def trial(i, rng):
            return run_div_complete(n, {0: n - ones, 1: ones}, rng=rng).winner

        outcomes = run_trials(600, trial, seed=5)
        share = outcomes.frequency(lambda w: w == 1)
        assert share == pytest.approx(ones / n, abs=0.06)

    def test_matches_generic_engine_distribution(self):
        # The count chain must agree in law with the generic engine on K_n.
        from repro.core.div import run_div
        from repro.graphs import complete_graph

        n = 40
        counts = {1: 16, 2: 12, 3: 12}  # c = 1.9
        graph = complete_graph(n)

        def fast_trial(i, rng):
            return run_div_complete(n, counts, rng=rng).winner

        def generic_trial(i, rng):
            opinions = [1] * 16 + [2] * 12 + [3] * 12
            return run_div(graph, opinions, rng=rng).winner

        fast = run_trials(300, fast_trial, seed=11)
        generic = run_trials(300, generic_trial, seed=12)
        p_fast = fast.frequency(lambda w: w == 2)
        p_generic = generic.frequency(lambda w: w == 2)
        assert p_fast == pytest.approx(p_generic, abs=0.12)


class TestWeightTraceClosesAtStop:
    def test_final_weight_recorded_at_stopping_step(self):
        # Regression: the S(t) trace only sampled steps divisible by
        # weight_interval, silently dropping the stopping step (the
        # generic engine always samples the final step).
        for seed in range(6):
            result = run_div_complete(
                30, {1: 15, 4: 15}, rng=seed, weight_interval=7
            )
            assert result.weight_steps[0] == 0
            assert result.weight_steps[-1] == result.steps
            final_weight = sum(o * c for o, c in result.counts.items())
            assert result.weights[-1] == final_weight

    def test_trace_steps_strictly_increasing(self):
        # No duplicate sample when the stopping step is itself divisible.
        for seed in range(5):
            result = run_div_complete(
                20, {2: 10, 3: 10}, rng=seed, weight_interval=1
            )
            steps = result.weight_steps
            assert steps == sorted(set(steps))
            assert steps[-1] == result.steps
