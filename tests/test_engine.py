"""Unit tests for repro.core.engine.run_dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IncrementalVoting,
    OpinionState,
    PullVoting,
    VertexScheduler,
    WeightTrace,
    run_dynamics,
)
from repro.core.observers import ChangeLog, FirstTimeTracker
from repro.core.stopping import MAX_STEPS_REASON, never, two_adjacent
from repro.errors import ProcessError
from repro.graphs import complete_graph
from repro.rng import make_rng


@pytest.fixture
def graph():
    return complete_graph(12)


def fresh_state(graph, rng=None):
    rng = rng or make_rng(0)
    return OpinionState(graph, rng.integers(1, 5, size=graph.n))


class TestBasicRuns:
    def test_runs_to_consensus(self, graph):
        state = fresh_state(graph)
        result = run_dynamics(
            state, VertexScheduler(graph), IncrementalVoting(), rng=1
        )
        assert result.stop_reason == "consensus"
        assert result.reached_stop
        assert state.is_consensus
        assert result.steps > 0
        assert result.state is state

    def test_already_stopped_at_start(self, graph):
        state = OpinionState(graph, [3] * graph.n)
        result = run_dynamics(
            state, VertexScheduler(graph), IncrementalVoting(), rng=1
        )
        assert result.steps == 0
        assert result.stop_reason == "consensus"

    def test_max_steps(self, graph):
        state = fresh_state(graph)
        result = run_dynamics(
            state,
            VertexScheduler(graph),
            IncrementalVoting(),
            stop=never,
            rng=1,
            max_steps=37,
        )
        assert result.steps == 37
        assert result.stop_reason == MAX_STEPS_REASON
        assert not result.reached_stop

    def test_never_without_budget_rejected(self, graph):
        state = fresh_state(graph)
        with pytest.raises(ProcessError):
            run_dynamics(
                state, VertexScheduler(graph), IncrementalVoting(), stop="never"
            )

    def test_bad_block_size(self, graph):
        state = fresh_state(graph)
        with pytest.raises(ProcessError):
            run_dynamics(
                state,
                VertexScheduler(graph),
                IncrementalVoting(),
                rng=1,
                block_size=0,
            )

    def test_two_adjacent_stop(self, graph):
        state = fresh_state(graph)
        result = run_dynamics(
            state, VertexScheduler(graph), IncrementalVoting(), stop=two_adjacent, rng=1
        )
        assert result.stop_reason == "two_adjacent"
        assert state.is_two_adjacent

    def test_dynamics_by_name(self, graph):
        state = fresh_state(graph)
        result = run_dynamics(state, VertexScheduler(graph), "pull", rng=1)
        assert result.stop_reason == "consensus"


class TestDeterminism:
    def test_same_seed_same_run(self, graph):
        results = []
        for _ in range(2):
            state = fresh_state(graph)
            result = run_dynamics(
                state, VertexScheduler(graph), IncrementalVoting(), rng=42
            )
            results.append((result.steps, state.consensus_value()))
        assert results[0] == results[1]

    def test_block_size_only_changes_sample_path(self, graph):
        # Any block size yields a valid run ending in consensus on a value
        # drawn from the initial support (block sampling reorders RNG
        # consumption but not the process law).
        initial = set(fresh_state(graph).support())
        for block_size in (1, 7, 4096):
            state = fresh_state(graph)
            result = run_dynamics(
                state,
                VertexScheduler(graph),
                IncrementalVoting(),
                rng=9,
                block_size=block_size,
            )
            assert result.stop_reason == "consensus"
            assert min(initial) <= state.consensus_value() <= max(initial)


class TestObservers:
    def test_weight_trace_sampling(self, graph):
        state = fresh_state(graph)
        trace = WeightTrace("edge", interval=10)
        result = run_dynamics(
            state,
            VertexScheduler(graph),
            IncrementalVoting(),
            stop=never,
            rng=3,
            max_steps=100,
            observers=[trace],
        )
        assert trace.steps[0] == 0
        assert trace.steps[-1] == 100
        assert trace.steps == sorted(trace.steps)
        assert len(trace.steps) == 11
        assert result.steps == 100

    def test_weight_trace_final_sample_not_duplicated(self, graph):
        state = fresh_state(graph)
        trace = WeightTrace("edge", interval=7)
        run_dynamics(
            state,
            VertexScheduler(graph),
            IncrementalVoting(),
            stop=never,
            rng=3,
            max_steps=21,
            observers=[trace],
        )
        assert trace.steps == [0, 7, 14, 21]

    def test_change_log_records_only_changes(self, graph):
        state = fresh_state(graph)
        log = ChangeLog()
        result = run_dynamics(
            state,
            VertexScheduler(graph),
            IncrementalVoting(),
            rng=3,
            observers=[log],
        )
        assert 0 < len(log.entries) <= result.steps
        steps = [entry[0] for entry in log.entries]
        assert steps == sorted(steps)

    def test_first_time_tracker(self, graph):
        state = fresh_state(graph)
        tracker = FirstTimeTracker(lambda s: s.is_two_adjacent)
        run_dynamics(
            state,
            VertexScheduler(graph),
            IncrementalVoting(),
            rng=3,
            observers=[tracker],
        )
        assert tracker.first_step is not None
        assert tracker.first_step >= 0

    def test_pull_voting_weight_is_exact_martingale_per_run_mean(self, graph):
        # Weak sanity: over many short pull runs the mean S-drift is ~0.
        drifts = []
        for seed in range(40):
            state = fresh_state(graph, make_rng(1))
            s0 = state.total_sum
            run_dynamics(
                state,
                VertexScheduler(graph),
                PullVoting(),
                stop=never,
                rng=seed,
                max_steps=50,
            )
            drifts.append(state.total_sum - s0)
        assert abs(np.mean(drifts)) < 3.0


class NoIntervalRecorder:
    """A sampled observer that never declares an ``interval`` attribute."""

    def __init__(self):
        self.steps = []

    def sample(self, step, state):
        self.steps.append(step)


class TestSampledObserverWithoutInterval:
    def test_interval_less_observer_defaults_to_one(self, graph):
        # Regression: the engine resolved a missing interval to 1 when
        # arming but read ``obs.interval`` directly at every re-arm, so
        # an interval-less observer crashed on its first in-loop sample.
        state = fresh_state(graph)
        observer = NoIntervalRecorder()
        result = run_dynamics(
            state,
            VertexScheduler(graph),
            IncrementalVoting(),
            stop=never,
            rng=2,
            max_steps=50,
            observers=[observer],
        )
        assert result.steps == 50
        assert observer.steps == list(range(51))
