"""Unit tests for the baseline dynamics (repro.baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    opinions_from_set,
    run_baseline,
    run_best_of_three,
    run_best_of_two,
    run_load_balancing,
    run_median_voting,
    run_pull_voting,
    run_push_voting,
    run_two_opinion_voting,
)
from repro.baselines.load_balancing import is_locally_balanced
from repro.core.dynamics import PullVoting
from repro.errors import InvalidOpinionsError
from repro.graphs import complete_graph, path_graph, star_graph


@pytest.fixture
def graph():
    return complete_graph(10)


@pytest.fixture
def opinions(rng):
    return rng.integers(1, 5, size=10)


class TestPullPush:
    def test_pull_reaches_consensus_on_initial_value(self, graph, opinions):
        outcome = run_pull_voting(graph, opinions, rng=1)
        assert outcome.stop_reason == "consensus"
        assert outcome.winner in set(opinions.tolist())
        assert outcome.dynamics == "pull"

    def test_push_reaches_consensus(self, graph, opinions):
        outcome = run_push_voting(graph, opinions, rng=1)
        assert outcome.stop_reason == "consensus"
        assert outcome.winner in set(opinions.tolist())

    def test_pull_preserves_value_set_membership(self, graph):
        # Pull voting can only ever hold initially-present values.
        outcome = run_pull_voting(graph, [1, 1, 1, 7, 7, 7, 9, 9, 9, 9], rng=2)
        assert outcome.winner in (1, 7, 9)


class TestTwoOpinion:
    def test_winner_is_zero_or_one(self, graph):
        result = run_two_opinion_voting(graph, [0, 1, 2], rng=1)
        assert result.winner in (0, 1)
        assert result.one_won == (result.winner == 1)

    def test_prediction_fields(self):
        graph = star_graph(5)
        result = run_two_opinion_voting(graph, [0], process="vertex", rng=1)
        assert result.predicted_p_one == pytest.approx(0.5)
        result = run_two_opinion_voting(graph, [0], process="edge", rng=1)
        assert result.predicted_p_one == pytest.approx(0.2)

    def test_degenerate_sets_rejected(self, graph):
        with pytest.raises(InvalidOpinionsError):
            run_two_opinion_voting(graph, [], rng=1)
        with pytest.raises(InvalidOpinionsError):
            run_two_opinion_voting(graph, list(range(10)), rng=1)

    def test_opinions_from_set(self, graph):
        opinions = opinions_from_set(graph, [2, 5])
        assert opinions.sum() == 2
        assert opinions[2] == opinions[5] == 1

    def test_opinions_from_set_out_of_range(self, graph):
        with pytest.raises(InvalidOpinionsError):
            opinions_from_set(graph, [99])


class TestMedian:
    def test_reaches_consensus(self, graph, opinions):
        outcome = run_median_voting(graph, opinions, rng=1, max_steps=1_000_000)
        assert outcome.stop_reason == "consensus"
        assert int(opinions.min()) <= outcome.winner <= int(opinions.max())

    def test_lands_near_median(self, rng):
        graph = complete_graph(60)
        opinions = np.array([1] * 20 + [2] * 25 + [9] * 15)
        winners = []
        for seed in range(20):
            outcome = run_median_voting(graph, opinions, rng=seed, max_steps=2_000_000)
            winners.append(outcome.winner)
        # Median is 2; the heavy tail at 9 must not drag the result there.
        assert np.mean(winners) < 4
        assert max(winners, key=winners.count) == 2


class TestBestOfK:
    def test_best_of_two_consensus(self, graph, opinions):
        outcome = run_best_of_two(graph, opinions, rng=1, max_steps=2_000_000)
        assert outcome.stop_reason == "consensus"
        assert outcome.winner in set(opinions.tolist())

    def test_best_of_three_consensus(self, graph, opinions):
        outcome = run_best_of_three(graph, opinions, rng=1, max_steps=2_000_000)
        assert outcome.stop_reason == "consensus"
        assert outcome.winner in set(opinions.tolist())

    def test_majority_amplification(self):
        # With a 70/30 split on K_n, best-of-two should let the majority
        # win almost always (much more often than pull voting's 0.7).
        graph = complete_graph(40)
        opinions = [1] * 28 + [2] * 12
        wins = sum(
            run_best_of_two(graph, opinions, rng=seed, max_steps=2_000_000).winner == 1
            for seed in range(20)
        )
        assert wins >= 18


class TestLoadBalancing:
    def test_conserves_sum_and_contracts(self, rng):
        graph = complete_graph(20)
        loads = rng.integers(1, 30, size=20)
        outcome = run_load_balancing(graph, loads, rng=1)
        assert outcome.state.total_sum == int(loads.sum())
        assert outcome.state.range_width <= 2
        assert outcome.stop_reason.startswith("range<=")

    def test_locally_balanced_detection(self):
        graph = path_graph(4)
        done = run_load_balancing(graph, [1, 1, 2, 2], rng=1)
        assert is_locally_balanced(done.state)

    def test_gradient_state_on_path_is_absorbing(self):
        # 1-2-3 on a path is locally balanced with range 2: the target
        # range<=1 is unreachable, so the budget must stop the run.
        graph = path_graph(3)
        outcome = run_load_balancing(
            graph, [1, 2, 3], target_width=1, rng=1, max_steps=5000
        )
        assert outcome.stop_reason == "max_steps"
        assert is_locally_balanced(outcome.state)
        assert sorted(outcome.state.values.tolist()) == [1, 2, 3]

    def test_integer_average_can_reach_consensus_width_zero(self):
        graph = complete_graph(4)
        outcome = run_load_balancing(graph, [1, 3, 1, 3], target_width=0, rng=2)
        assert outcome.winner == 2


class TestRunBaselineGeneric:
    def test_custom_dynamics_and_stop(self, graph, opinions):
        outcome = run_baseline(
            graph, opinions, PullVoting(), stop="never", max_steps=25, rng=1
        )
        assert outcome.steps == 25
        assert outcome.winner is None or outcome.state.is_consensus
        assert outcome.initial_mean == pytest.approx(float(np.mean(opinions)))
