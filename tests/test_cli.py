"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 13):
            assert f"E{i}" in out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "stage evolution" in out
        assert "winner" in out


class TestRun:
    def test_run_quick_experiment(self, capsys, monkeypatch):
        # Shrink E10 further so the CLI test stays fast.
        from repro.experiments import e10_stage_evolution

        monkeypatch.setattr(
            e10_stage_evolution.Config,
            "quick",
            classmethod(lambda cls: cls(n=12, trials=5, sample_trajectories=1)),
        )
        assert main(["run", "E10", "--quick", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "E10" in out
        assert "finished in" in out

    def test_run_unknown_experiment_exits_2(self, capsys):
        # Expected failures print one line to stderr instead of a
        # traceback (see the main() error wrapper).
        assert main(["run", "E77"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("div-repro: error:")
        assert "E77" in err
        assert "Traceback" not in err

    def test_unexpected_exceptions_keep_their_traceback(self, monkeypatch):
        import repro.cli as cli

        def boom(args):
            raise ValueError("a genuine bug")

        monkeypatch.setattr(cli, "_cmd_run", boom)
        with pytest.raises(ValueError, match="genuine bug"):
            main(["run", "E1"])

    def test_resume_without_checkpoint_dir_exits_2(self, capsys):
        assert main(["run", "E1", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_bad_fault_spec_exits_2(self, capsys):
        assert main(["run", "E1", "--inject-faults", "explode@1"]) == 2
        assert "explode" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


def _shrink_e10(monkeypatch):
    from repro.experiments import e10_stage_evolution

    monkeypatch.setattr(
        e10_stage_evolution.Config,
        "quick",
        classmethod(lambda cls: cls(n=12, trials=6, sample_trajectories=1)),
    )


class TestCheckpointCommands:
    def test_run_checkpoint_resume_round_trip(self, tmp_path, capsys, monkeypatch):
        _shrink_e10(monkeypatch)
        ckpt = str(tmp_path / "ckpt")
        base = ["run", "E10", "--quick", "--seed", "5", "--checkpoint-dir", ckpt]
        assert main(base) == 0
        first = capsys.readouterr().out
        # A second run without --resume must refuse...
        assert main(base) == 2
        capsys.readouterr()
        # ...and with --resume reproduce the report exactly.
        assert main(base + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if "finished in" not in line
        ]
        assert strip(resumed) == strip(first)

    def test_checkpoint_show_and_diff(self, tmp_path, capsys, monkeypatch):
        _shrink_e10(monkeypatch)
        for name in ("a", "b"):
            assert (
                main(
                    [
                        "run",
                        "E10",
                        "--quick",
                        "--seed",
                        "5",
                        "--checkpoint-dir",
                        str(tmp_path / name),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        assert main(["checkpoint", "show", str(tmp_path / "a")]) == 0
        out = capsys.readouterr().out
        assert "E10" in out
        assert "journaled trial(s)" in out
        assert (
            main(
                [
                    "checkpoint",
                    "diff",
                    str(tmp_path / "a" / "e10"),
                    str(tmp_path / "b" / "e10"),
                ]
            )
            == 0
        )
        assert "identical" in capsys.readouterr().out

    def test_checkpoint_diff_detects_divergence(self, tmp_path, capsys, monkeypatch):
        _shrink_e10(monkeypatch)
        for seed in ("5", "6"):
            assert (
                main(
                    [
                        "run",
                        "E10",
                        "--quick",
                        "--seed",
                        seed,
                        "--checkpoint-dir",
                        str(tmp_path / seed),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        assert (
            main(
                [
                    "checkpoint",
                    "diff",
                    str(tmp_path / "5" / "e10"),
                    str(tmp_path / "6" / "e10"),
                ]
            )
            == 1
        )
        assert "difference" in capsys.readouterr().out

    def test_checkpoint_show_not_a_campaign(self, tmp_path, capsys):
        assert main(["checkpoint", "show", str(tmp_path)]) == 2
        assert "no campaign" in capsys.readouterr().err


class TestExecutorFlags:
    def test_journal_executor_requires_checkpoint_dir(self, capsys):
        assert main(["run", "E1", "--executor", "journal"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("div-repro: error:")
        assert "--checkpoint-dir" in err

    def test_lease_ttl_requires_journal_executor(self, tmp_path, capsys):
        assert (
            main(
                [
                    "run",
                    "E1",
                    "--quick",
                    "--executor",
                    "pool",
                    "--lease-ttl",
                    "2",
                    "--checkpoint-dir",
                    str(tmp_path),
                ]
            )
            == 2
        )
        assert "lease_ttl only applies" in capsys.readouterr().err

    def test_unknown_executor_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "E1", "--executor", "warp"])

    def test_journal_executor_run_and_status(self, tmp_path, capsys, monkeypatch):
        _shrink_e10(monkeypatch)
        ckpt = str(tmp_path / "ckpt")
        base = ["run", "E10", "--quick", "--seed", "5", "--checkpoint-dir", ckpt]
        assert main(base) == 0
        reference = capsys.readouterr().out
        journal_args = [
            "run",
            "E10",
            "--quick",
            "--seed",
            "5",
            "--checkpoint-dir",
            str(tmp_path / "journal"),
            "--executor",
            "journal",
            "--lease-ttl",
            "5",
        ]
        assert main(journal_args) == 0
        journaled = capsys.readouterr().out
        strip = lambda text: [
            line
            for line in text.splitlines()
            if "finished in" not in line and "trial execution" not in line
        ]
        assert strip(journaled) == strip(reference)
        assert (
            main(
                [
                    "checkpoint",
                    "diff",
                    str(tmp_path / "ckpt" / "e10"),
                    str(tmp_path / "journal" / "e10"),
                ]
            )
            == 0
        )
        assert "identical" in capsys.readouterr().out


class TestCampaignStatus:
    def test_status_reports_batches_and_leases(self, tmp_path, capsys, monkeypatch):
        _shrink_e10(monkeypatch)
        ckpt = tmp_path / "ckpt"
        assert (
            main(
                ["run", "E10", "--quick", "--seed", "5", "--checkpoint-dir", str(ckpt)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["campaign", "status", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "journaled trial(s)" in out
        assert "0 live / 0 stale lease(s)" in out

        # Plant a live lease as a concurrent launcher would and make
        # sure status surfaces its owner and claimed trial range.
        from repro.checkpoint import CheckpointJournal
        from repro.parallel import LeaseConfig, LeaseManager

        journal = CheckpointJournal(ckpt / "e10")
        batch = next(iter(journal.iter_records()))[0]
        manager = LeaseManager(
            journal.lease_dir(batch),
            LeaseConfig(ttl=60.0),
            owner="peer-pid99-L0",
        )
        assert manager.claim(0, [0, 1, 2]) == "claim"
        assert main(["campaign", "status", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "1 live / 0 stale lease(s)" in out
        assert "c00000000.lease: live, owner peer-pid99-L0, t0..t2" in out

    def test_status_of_non_campaign_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path)]) == 2
        assert "no campaign" in capsys.readouterr().err


class TestReport:
    def test_combined_report(self, tmp_path, capsys, monkeypatch):
        # Limit the registry to one cheap experiment for the test.
        import repro.cli as cli
        from repro.experiments import e10_stage_evolution
        from repro.experiments.registry import REGISTRY

        monkeypatch.setattr(
            e10_stage_evolution.Config,
            "quick",
            classmethod(lambda cls: cls(n=12, trials=5, sample_trajectories=1)),
        )
        monkeypatch.setattr(
            cli, "all_experiments", lambda: [REGISTRY["E10"]]
        )
        target = tmp_path / "report.md"
        assert main(["report", str(target), "--quick", "--seed", "2"]) == 0
        text = target.read_text()
        assert text.startswith("# DIV reproduction")
        assert "E10" in text
