"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 13):
            assert f"E{i}" in out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "stage evolution" in out
        assert "winner" in out


class TestRun:
    def test_run_quick_experiment(self, capsys, monkeypatch):
        # Shrink E10 further so the CLI test stays fast.
        from repro.experiments import e10_stage_evolution

        monkeypatch.setattr(
            e10_stage_evolution.Config,
            "quick",
            classmethod(lambda cls: cls(n=12, trials=5, sample_trajectories=1)),
        )
        assert main(["run", "E10", "--quick", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "E10" in out
        assert "finished in" in out

    def test_run_unknown_experiment(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "E77"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    def test_combined_report(self, tmp_path, capsys, monkeypatch):
        # Limit the registry to one cheap experiment for the test.
        import repro.cli as cli
        from repro.experiments import e10_stage_evolution
        from repro.experiments.registry import REGISTRY

        monkeypatch.setattr(
            e10_stage_evolution.Config,
            "quick",
            classmethod(lambda cls: cls(n=12, trials=5, sample_trajectories=1)),
        )
        monkeypatch.setattr(
            cli, "all_experiments", lambda: [REGISTRY["E10"]]
        )
        target = tmp_path / "report.md"
        assert main(["report", str(target), "--quick", "--seed", "2"]) == 0
        text = target.read_text()
        assert text.startswith("# DIV reproduction")
        assert "E10" in text
