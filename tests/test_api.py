"""Public API surface checks: exports resolve and carry documentation."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.graphs",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
    "repro.experiments",
]


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


@pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
def test_public_items_are_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if inspect.isfunction(item) or inspect.isclass(item):
            if not inspect.getdoc(item):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_experiment_modules_follow_contract():
    from repro.experiments.registry import all_experiments

    for spec in all_experiments():
        module = importlib.import_module(spec.run.__module__)
        assert module.EXPERIMENT_ID == spec.experiment_id
        assert module.TITLE
        signature = inspect.signature(module.run)
        parameters = list(signature.parameters)
        assert parameters in (["config", "seed"], ["config", "seed", "workers"])
        if "workers" in signature.parameters:
            # Parallelism is opt-in: the serial default must stay intact.
            assert signature.parameters["workers"].default is None
        assert inspect.getdoc(module.run)
