"""Tests for local majority polling and the chi-square GoF helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.gof import chi_square_gof
from repro.baselines import run_local_majority
from repro.core import OpinionState
from repro.core.dynamics import LocalMajority
from repro.errors import AnalysisError
from repro.graphs import Graph, complete_graph, path_graph, star_graph


class TestLocalMajorityDynamic:
    def test_adopts_neighbourhood_majority(self, rng):
        graph = star_graph(5)
        state = OpinionState(graph, [9, 1, 1, 1, 2])
        assert LocalMajority().step(state, 0, 1, rng)
        assert state.value(0) == 1

    def test_keeps_own_on_tie(self, rng):
        graph = path_graph(3)
        state = OpinionState(graph, [1, 1, 2])
        # Vertex 1's neighbourhood is {1, 2}: tied, and own value 1 is
        # among the tied values, so nothing changes.
        assert not LocalMajority().step(state, 1, 0, rng)
        assert state.value(1) == 1

    def test_tie_without_own_value_takes_smallest(self, rng):
        graph = path_graph(3)
        state = OpinionState(graph, [1, 5, 3])
        assert LocalMajority().step(state, 1, 0, rng)
        assert state.value(1) == 1

    def test_run_reaches_consensus_on_clear_majority(self):
        graph = complete_graph(15)
        opinions = [1] * 11 + [4] * 4
        outcome = run_local_majority(graph, opinions, rng=1)
        assert outcome.stop_reason == "consensus"
        assert outcome.winner == 1

    def test_stable_non_consensus_state_hits_budget(self):
        # Two triangles joined by one edge: each vertex already agrees
        # with its neighbourhood majority, so the state is frozen.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
        graph = Graph(6, edges)
        outcome = run_local_majority(
            graph, [1, 1, 1, 7, 7, 7], rng=1, max_steps=3000
        )
        assert outcome.stop_reason == "max_steps"
        assert sorted(outcome.final_support) == [1, 7]


class TestChiSquareGof:
    def test_perfect_fit_high_p(self, rng):
        observed = rng.choice([3, 4], size=2000, p=[0.7, 0.3])
        result = chi_square_gof(observed.tolist(), {3: 0.7, 4: 0.3})
        assert result.p_value > 0.01
        assert not result.rejects()
        assert result.dof >= 1

    def test_bad_fit_rejected(self, rng):
        observed = rng.choice([3, 4], size=2000, p=[0.5, 0.5])
        result = chi_square_gof(observed.tolist(), {3: 0.9, 4: 0.1})
        assert result.rejects()
        assert result.p_value < 1e-6

    def test_unexpected_outcome_rejected(self):
        observed = [3] * 90 + [7] * 10  # 7 has predicted probability 0
        result = chi_square_gof(observed, {3: 1.0})
        assert result.rejects()

    def test_partial_prediction_pools_other(self, rng):
        observed = rng.choice([1, 2, 3], size=900, p=[0.6, 0.3, 0.1])
        result = chi_square_gof(observed.tolist(), {1: 0.6, 2: 0.3})
        assert result.p_value > 0.001

    def test_validation(self):
        with pytest.raises(AnalysisError):
            chi_square_gof([], {1: 1.0})
        with pytest.raises(AnalysisError):
            chi_square_gof([1], {1: 1.5})
        with pytest.raises(AnalysisError):
            chi_square_gof([1], {1: -0.1, 2: 0.5})
