"""Unit tests for repro.graphs.graph.Graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphConstructionError, GraphError
from repro.graphs import Graph, complete_graph, path_graph, star_graph


class TestConstruction:
    def test_basic_triangle(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 0)])
        assert g.n == 3
        assert g.m == 3
        assert g.degree(0) == 2

    def test_single_vertex(self):
        g = Graph(1, [])
        assert g.n == 1
        assert g.m == 0

    def test_edges_any_orientation(self):
        g1 = Graph(3, [(0, 1), (1, 2)])
        g2 = Graph(3, [(1, 0), (2, 1)])
        assert g1 == g2

    def test_rejects_zero_vertices(self):
        with pytest.raises(GraphConstructionError):
            Graph(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphConstructionError):
            Graph(3, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphConstructionError):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphConstructionError):
            Graph(3, [(0, 3)])
        with pytest.raises(GraphConstructionError):
            Graph(3, [(-1, 0)])

    def test_rejects_malformed_edges(self):
        with pytest.raises(GraphConstructionError):
            Graph(3, [(0, 1, 2)])


class TestAccessors:
    def test_degrees_sum_to_2m(self, any_graph):
        assert any_graph.degrees.sum() == 2 * any_graph.m

    def test_neighbors_sorted_and_symmetric(self, any_graph):
        for v in range(any_graph.n):
            nbrs = any_graph.neighbors(v)
            assert list(nbrs) == sorted(nbrs)
            for w in nbrs:
                assert v in any_graph.neighbors(int(w))

    def test_has_edge(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_has_edge_out_of_range(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(GraphError):
            g.has_edge(0, 5)

    def test_edges_iteration_canonical(self):
        g = Graph(4, [(3, 2), (1, 0)])
        assert list(g.edges()) == [(0, 1), (2, 3)]

    def test_edge_array_read_only(self, small_complete):
        with pytest.raises(ValueError):
            small_complete.edge_array[0, 0] = 99

    def test_indices_read_only(self, small_complete):
        with pytest.raises(ValueError):
            small_complete.indices[0] = 99

    def test_neighbors_out_of_range(self, small_complete):
        with pytest.raises(GraphError):
            small_complete.neighbors(100)


class TestDerived:
    def test_stationary_distribution_sums_to_one(self, any_graph):
        pi = any_graph.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi > 0)

    def test_stationary_distribution_star(self):
        g = star_graph(5)  # hub degree 4, leaves degree 1, 2m = 8
        pi = g.stationary_distribution()
        assert pi[0] == pytest.approx(0.5)
        assert pi[1] == pytest.approx(1 / 8)

    def test_stationary_needs_edges(self):
        with pytest.raises(GraphError):
            Graph(2, []).stationary_distribution()

    def test_total_degree(self):
        g = star_graph(5)
        assert g.total_degree([0]) == 4
        assert g.total_degree([1, 2]) == 2
        assert g.total_degree(range(g.n)) == 2 * g.m

    def test_total_degree_out_of_range(self, small_star):
        with pytest.raises(GraphError):
            small_star.total_degree([99])

    def test_is_connected(self):
        assert path_graph(5).is_connected()
        assert not Graph(4, [(0, 1), (2, 3)]).is_connected()
        assert Graph(1, []).is_connected()

    def test_is_regular(self):
        assert complete_graph(5).is_regular()
        assert not star_graph(4).is_regular()

    def test_is_bipartite(self):
        assert path_graph(5).is_bipartite()
        assert star_graph(6).is_bipartite()
        assert not complete_graph(3).is_bipartite()

    def test_equality_and_hash(self):
        g1 = Graph(3, [(0, 1), (1, 2)])
        g2 = Graph(3, [(2, 1), (0, 1)])
        g3 = Graph(3, [(0, 1), (0, 2)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3
        assert g1 != "not a graph"
