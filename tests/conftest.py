"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import make_rng

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    lollipop_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator; tests stay deterministic."""
    return make_rng(12345)


@pytest.fixture
def triangle() -> Graph:
    """K_3 — the smallest connected non-bipartite graph."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


@pytest.fixture
def small_complete() -> Graph:
    return complete_graph(8)


@pytest.fixture
def small_path() -> Graph:
    return path_graph(6)


@pytest.fixture
def small_cycle() -> Graph:
    return cycle_graph(7)


@pytest.fixture
def small_star() -> Graph:
    return star_graph(7)


@pytest.fixture
def small_lollipop() -> Graph:
    return lollipop_graph(5, 4)


@pytest.fixture
def small_regular(rng) -> Graph:
    return random_regular_graph(20, 4, rng=rng)


@pytest.fixture(
    params=["complete", "path", "cycle", "star", "lollipop"],
    ids=lambda p: p,
)
def any_graph(request) -> Graph:
    """A parametrized selection of small connected graphs."""
    factories = {
        "complete": lambda: complete_graph(8),
        "path": lambda: path_graph(6),
        "cycle": lambda: cycle_graph(7),
        "star": lambda: star_graph(7),
        "lollipop": lambda: lollipop_graph(5, 4),
    }
    return factories[request.param]()
