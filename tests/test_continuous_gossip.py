"""Unit tests for the continuous gossip baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import run_continuous_gossip, spread_trace
from repro.errors import ProcessError
from repro.graphs import Graph, complete_graph, random_regular_graph


class TestGossip:
    def test_converges_to_exact_average(self, rng):
        graph = complete_graph(30)
        values = rng.normal(20, 5, size=30)
        result = run_continuous_gossip(graph, values, tolerance=1e-8, rng=1)
        assert result.stop_reason == "converged"
        assert result.final_spread <= 1e-8
        assert result.final_mean == pytest.approx(float(np.mean(values)), abs=1e-9)
        assert result.initial_mean == pytest.approx(float(np.mean(values)))

    def test_mean_conserved_even_unconverged(self, rng):
        graph = random_regular_graph(40, 4, rng=rng)
        values = rng.integers(0, 100, size=40).astype(float)
        result = run_continuous_gossip(graph, values, tolerance=1e-12, max_steps=500, rng=2)
        assert result.final_mean == pytest.approx(float(np.mean(values)), abs=1e-9)

    def test_already_converged(self):
        graph = complete_graph(5)
        result = run_continuous_gossip(graph, [3.0] * 5, rng=0)
        assert result.steps == 0
        assert result.stop_reason == "converged"

    def test_spread_monotone_non_increasing(self, rng):
        graph = complete_graph(25)
        values = rng.normal(0, 1, size=25)
        spreads = spread_trace(graph, values, [0, 100, 200, 400, 800], rng=3)
        assert all(a >= b - 1e-12 for a, b in zip(spreads, spreads[1:]))
        assert spreads[-1] < spreads[0]

    def test_faster_on_better_expanders(self, rng):
        # Spread decay rate grows with the spectral gap: K_n beats a
        # sparse ring-like random regular graph at equal step counts.
        n = 60
        values = np.concatenate([np.zeros(30), np.ones(30)])
        dense = spread_trace(complete_graph(n), values, [2000], rng=4)[0]
        sparse = spread_trace(
            random_regular_graph(n, 3, rng=5), values, [2000], rng=4
        )[0]
        assert dense < sparse

    def test_validation(self):
        graph = complete_graph(4)
        with pytest.raises(ProcessError):
            run_continuous_gossip(graph, [1.0, 2.0])  # wrong length
        with pytest.raises(ProcessError):
            run_continuous_gossip(graph, [1.0] * 4, tolerance=0.0)
        with pytest.raises(ProcessError):
            run_continuous_gossip(Graph(2, []), [1.0, 2.0])
        with pytest.raises(ProcessError):
            spread_trace(graph, [1.0] * 4, [5, 3])

    def test_deterministic(self, rng):
        graph = complete_graph(20)
        values = list(range(20))
        a = run_continuous_gossip(graph, values, rng=7)
        b = run_continuous_gossip(graph, values, rng=7)
        assert a.steps == b.steps
        assert np.array_equal(a.values, b.values)
