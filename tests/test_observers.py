"""Unit tests for repro.core.observers."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import OpinionState
from repro.core.observers import (
    ChangeLog,
    ExtremeMeasureTrace,
    FirstTimeTracker,
    OpinionCountsTrace,
    Stage,
    StageRecorder,
    SupportTrace,
    TraceBuffer,
    WeightTrace,
)
from repro.errors import ProcessError
from repro.graphs import complete_graph


@pytest.fixture
def graph():
    return complete_graph(6)


class TestWeightTrace:
    def test_records_weight(self, graph):
        state = OpinionState(graph, [1, 1, 2, 2, 3, 3])
        trace = WeightTrace("edge", interval=5)
        trace.sample(0, state)
        state.apply(0, 2)
        trace.sample(5, state)
        assert trace.steps == [0, 5]
        assert trace.weights == [12.0, 13.0]

    def test_non_positive_interval_rejected(self):
        # Regression: constructors used to clamp max(1, interval), so a
        # typo silently became per-step sampling while the engines
        # rejected the same interval loudly.  One validation path now.
        for bad in (0, -3):
            for make in (
                lambda i: WeightTrace("edge", interval=i),
                lambda i: SupportTrace(interval=i),
                lambda i: OpinionCountsTrace(interval=i),
                lambda i: ExtremeMeasureTrace(interval=i),
            ):
                with pytest.raises(ProcessError, match="interval"):
                    make(bad)


class TestSupportAndCounts:
    def test_support_trace(self, graph):
        state = OpinionState(graph, [1, 1, 2, 2, 5, 5])
        trace = SupportTrace(interval=1)
        trace.sample(0, state)
        state.apply(4, 4)
        state.apply(5, 4)
        trace.sample(1, state)
        assert trace.sizes == [3, 3]
        assert trace.maxs == [5, 4]
        assert trace.mins == [1, 1]

    def test_counts_trace(self, graph):
        state = OpinionState(graph, [1, 1, 2, 2, 5, 5])
        trace = OpinionCountsTrace()
        trace.sample(0, state)
        assert trace.histograms == [{1: 2, 2: 2, 5: 2}]


class TestStageRecorder:
    def test_records_support_changes_only(self, graph):
        state = OpinionState(graph, [1, 1, 2, 2, 5, 5])
        recorder = StageRecorder()
        recorder.sample(0, state)
        # A change that does not alter the support set: no new stage.
        state.apply(0, 2)
        state.apply(0, 1)
        recorder.on_change(1, 0, 1, state)
        recorder.on_change(2, 0, 1, state)
        assert len(recorder.stages) == 1
        # Remove opinion 5 entirely: new stage.
        state.apply(4, 4)
        recorder.on_change(3, 4, 0, state)
        state.apply(5, 4)
        recorder.on_change(4, 5, 0, state)
        assert recorder.stages[-1].support == (1, 2, 4)
        assert recorder.stages[0] == Stage(step=0, support=(1, 2, 5))

    def test_extreme_removals(self, graph):
        state = OpinionState(graph, [1, 1, 2, 2, 5, 5])
        recorder = StageRecorder()
        recorder.sample(0, state)
        state.apply(4, 4)
        recorder.on_change(1, 4, 0, state)  # support {1,2,4,5}
        state.apply(5, 4)
        recorder.on_change(2, 5, 0, state)  # support {1,2,4}: 5 removed
        assert recorder.extreme_removals() == [5]

    def test_interior_disappearance_not_a_removal(self, graph):
        state = OpinionState(graph, [1, 2, 3, 3, 5, 5])
        recorder = StageRecorder()
        recorder.sample(0, state)
        state.apply(1, 1)  # opinion 2 vanishes (interior)
        recorder.on_change(1, 1, 0, state)
        assert recorder.extreme_removals() == []


class TestFirstTimeTracker:
    def test_detects_on_change(self, graph):
        state = OpinionState(graph, [1, 1, 1, 1, 1, 3])
        tracker = FirstTimeTracker(lambda s: s.is_two_adjacent, label="x")
        tracker.sample(0, state)
        assert tracker.first_step is None
        state.apply(5, 2)
        tracker.on_change(4, 5, 0, state)
        assert tracker.first_step == 4
        # Later triggers do not overwrite the first time.
        tracker.on_change(9, 5, 0, state)
        assert tracker.first_step == 4

    def test_true_at_start(self, graph):
        state = OpinionState(graph, [2] * 6)
        tracker = FirstTimeTracker(lambda s: s.is_consensus)
        tracker.sample(0, state)
        assert tracker.first_step == 0


class TestExtremeMeasureTrace:
    def test_records_products(self, graph):
        # K_6 is 5-regular: π(A_i) = N_i / 6.
        state = OpinionState(graph, [1, 1, 2, 2, 5, 5])
        trace = ExtremeMeasureTrace(interval=1)
        trace.sample(0, state)
        assert trace.pi_min_class == [pytest.approx(2 / 6)]
        assert trace.pi_max_class == [pytest.approx(2 / 6)]
        assert trace.products == [pytest.approx(4 / 36)]
        assert trace.support_sizes == [3]

    def test_consensus_product_is_zero(self, graph):
        state = OpinionState(graph, [3] * 6)
        trace = ExtremeMeasureTrace()
        trace.sample(0, state)
        assert trace.products == [0.0]


class TestTraceBuffer:
    def test_sequence_protocol(self):
        buf = TraceBuffer(dtype=np.int64, capacity=2)
        for v in (3, 1, 4, 1, 5):
            buf.append(v)
        assert len(buf) == 5
        assert buf[0] == 3 and buf[-1] == 5
        assert list(buf) == [3, 1, 4, 1, 5]
        assert buf.tolist() == [3, 1, 4, 1, 5]
        assert buf == [3, 1, 4, 1, 5]
        assert buf == np.array([3, 1, 4, 1, 5])
        assert not (buf == [3, 1, 4])

    def test_growth_is_geometric(self):
        buf = TraceBuffer(dtype=np.float64, capacity=4)
        assert buf.capacity == 4
        for v in range(5):
            buf.append(float(v))
        assert buf.capacity == 8
        for v in range(20):
            buf.append(float(v))
        assert buf.capacity == 32

    def test_array_view_is_zero_copy(self):
        buf = TraceBuffer(dtype=np.int64)
        buf.append(7)
        buf.append(8)
        arr = np.asarray(buf)
        assert arr.dtype == np.int64
        assert arr.tolist() == [7, 8]
        assert arr.base is not None  # a view, not a copy
        with pytest.raises(ValueError):
            buf.values[0] = 0  # read-only

    def test_pickle_roundtrip(self):
        buf = TraceBuffer(dtype=np.float64)
        buf.append(1.5)
        buf.append(2.5)
        clone = pickle.loads(pickle.dumps(buf))
        assert clone == buf
        clone.append(3.5)  # appendable after unpickling
        assert clone.tolist() == [1.5, 2.5, 3.5]
        assert buf.tolist() == [1.5, 2.5]

    def test_approx_equality(self):
        buf = TraceBuffer(dtype=np.float64)
        buf.append(1 / 3)
        assert buf == [pytest.approx(1 / 3)]


class TestChangeLog:
    def test_entries(self, graph):
        state = OpinionState(graph, [1, 1, 2, 2, 3, 3])
        log = ChangeLog()
        state.apply(0, 2)
        log.on_change(1, 0, 3, state)
        assert log.entries == [(1, 0, 3, 2, 2)]
