"""Unit tests for repro.graphs.spectral."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    complete_bipartite_graph,
    complete_graph,
    conductance,
    cycle_graph,
    edge_measure,
    gnp_random_graph,
    mixing_lemma_bound,
    normalized_adjacency,
    path_graph,
    random_regular_graph,
    second_eigenvalue,
    spectral_gap,
    spectral_profile,
    star_graph,
    transition_matrix,
    walk_spectrum,
)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self, any_graph):
        P = transition_matrix(any_graph)
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_entries(self, triangle):
        P = transition_matrix(triangle)
        assert P[0, 1] == pytest.approx(0.5)
        assert P[0, 0] == pytest.approx(0.0, abs=1e-15)

    def test_detailed_balance(self, any_graph):
        P = transition_matrix(any_graph)
        pi = any_graph.stationary_distribution()
        assert np.allclose(pi[:, None] * P, (pi[:, None] * P).T)

    def test_rejects_isolated_vertices(self):
        with pytest.raises(GraphError):
            transition_matrix(Graph(3, [(0, 1)]))


class TestSecondEigenvalue:
    def test_complete_graph(self):
        # λ(K_n) = 1/(n-1), the paper's first example.
        for n in (3, 10, 50):
            assert second_eigenvalue(complete_graph(n)) == pytest.approx(
                1 / (n - 1), abs=1e-9
            )

    def test_cycle_graph(self):
        # Walk eigenvalues of C_n are cos(2πj/n); for odd n the largest
        # absolute non-trivial one is |cos(π(n-1)/n)| = cos(π/n).
        n = 11
        assert second_eigenvalue(cycle_graph(n)) == pytest.approx(
            math.cos(math.pi / n), abs=1e-9
        )

    def test_even_cycle_is_bipartite(self):
        assert second_eigenvalue(cycle_graph(12)) == pytest.approx(1.0)

    def test_bipartite_is_one(self):
        assert second_eigenvalue(complete_bipartite_graph(3, 4)) == pytest.approx(1.0)
        assert second_eigenvalue(star_graph(6)) == pytest.approx(1.0)

    def test_path_close_to_one(self):
        # λ(P_n) = 1 - O(1/n²), the paper's counterexample family.
        lam = second_eigenvalue(path_graph(50))
        assert 0.99 < lam < 1.0

    def test_spectrum_sorted_and_bounded(self, any_graph):
        spectrum = walk_spectrum(any_graph)
        assert spectrum[0] == pytest.approx(1.0)
        assert np.all(np.diff(spectrum) <= 1e-12)
        assert np.all(spectrum >= -1.0 - 1e-9)

    def test_sparse_path_agrees_with_dense(self, rng):
        # Force the Lanczos path by lowering the dense threshold.
        from repro.graphs import spectral

        g = random_regular_graph(80, 6, rng=rng)
        dense = second_eigenvalue(g)
        old = spectral._DENSE_LIMIT
        spectral._DENSE_LIMIT = 10
        try:
            sparse = second_eigenvalue(g)
        finally:
            spectral._DENSE_LIMIT = old
        assert sparse == pytest.approx(dense, abs=1e-6)

    def test_edgeless_graph_rejected(self):
        # A vertex with no neighbours has no random walk.
        with pytest.raises(GraphError):
            second_eigenvalue(Graph(1, []))

    def test_spectral_gap(self):
        assert spectral_gap(complete_graph(11)) == pytest.approx(0.9)

    def test_random_regular_lambda_small(self, rng):
        g = random_regular_graph(100, 16, rng=rng)
        assert second_eigenvalue(g) < 0.7  # 2/sqrt(16) = 0.5 plus slack


class TestProfileAndMeasures:
    def test_spectral_profile(self):
        profile = spectral_profile(complete_graph(10))
        assert profile.n == 10
        assert profile.lam == pytest.approx(1 / 9)
        assert profile.pi_min == pytest.approx(0.1)
        assert profile.lambda_k(5) == pytest.approx(5 / 9)

    def test_theorem_conditions(self):
        good = spectral_profile(complete_graph(200))
        assert good.satisfies_theorem_conditions(5)
        bad = spectral_profile(path_graph(200))
        assert not bad.satisfies_theorem_conditions(5)

    def test_edge_measure_full_sets(self, any_graph):
        everything = list(range(any_graph.n))
        assert edge_measure(any_graph, everything, everything) == pytest.approx(1.0)

    def test_edge_measure_matches_definition(self, small_lollipop):
        # Q(S, U) = (# ordered S->U adjacent pairs) / 2m.
        S, U = [0, 1], [2, 3, 4]
        count = sum(
            1
            for s in S
            for u in U
            if small_lollipop.has_edge(s, u)
        )
        assert edge_measure(small_lollipop, S, U) == pytest.approx(
            count / (2 * small_lollipop.m)
        )

    def test_mixing_lemma_holds(self, rng):
        # Lemma 9 audit on random graphs and random sets.
        for _ in range(5):
            g = gnp_random_graph(40, 0.3, rng=rng, require_connected=True)
            size_s = int(rng.integers(1, 20))
            size_u = int(rng.integers(1, 20))
            S = rng.choice(40, size=size_s, replace=False)
            U = rng.choice(40, size=size_u, replace=False)
            deviation, bound = mixing_lemma_bound(g, S, U)
            assert deviation <= bound + 1e-9

    def test_conductance_complete(self):
        g = complete_graph(10)
        # For K_n, Q(S, S^c)/pi(S) = |S^c|/(n-1); conductance of a half-cut.
        value = conductance(g, list(range(5)))
        assert value == pytest.approx((5 / 10) * (5 / 9) / 0.5)

    def test_conductance_needs_proper_cut(self, small_complete):
        with pytest.raises(GraphError):
            conductance(small_complete, [])
        with pytest.raises(GraphError):
            conductance(small_complete, list(range(small_complete.n)))

    def test_normalized_adjacency_symmetric(self, any_graph):
        N = normalized_adjacency(any_graph).toarray()
        assert np.allclose(N, N.T)
