"""Tests for the determinism & layering linter (``repro.devtools``).

Each rule gets a known-bad fixture (must fire, with the right rule id
and line number) and a known-good one (must stay silent).  Suppression
comments, the JSON reporter schema, the CLI wiring and a self-check
that ``src/repro`` is lint-clean round out the suite.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro import devtools
from repro.cli import main as cli_main
from repro.devtools import (
    Finding,
    Severity,
    lint_paths,
    lint_source,
    parse_suppressions,
    render_json,
    render_text,
)

SRC_PATH = "src/repro/analysis/example.py"
CORE_PATH = "src/repro/core/example.py"
TEST_PATH = "tests/test_example.py"


def lint(source: str, path: str = SRC_PATH, **kwargs):
    return lint_source(textwrap.dedent(source), path=path, **kwargs)


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestRNG001:
    def test_np_random_module_function_flagged(self):
        findings = lint(
            """\
            import numpy as np

            def sample(n):
                return np.random.rand(n)
            """
        )
        assert rule_ids(findings) == ["RNG001"]
        assert findings[0].line == 4
        assert "np.random.rand" in findings[0].message

    def test_default_rng_flagged_outside_rng_module(self):
        findings = lint(
            """\
            import numpy as np
            gen = np.random.default_rng(0)
            """
        )
        assert rule_ids(findings) == ["RNG001"]

    def test_stdlib_random_call_flagged(self):
        findings = lint(
            """\
            import random

            def pick(items):
                return random.choice(items)
            """
        )
        assert rule_ids(findings) == ["RNG001"]
        assert findings[0].line == 4

    def test_stdlib_random_from_import_flagged(self):
        findings = lint("from random import shuffle\n")
        assert rule_ids(findings) == ["RNG001"]
        assert findings[0].line == 1

    def test_numpy_random_alias_flagged(self):
        findings = lint(
            """\
            from numpy import random as npr
            x = npr.normal(0.0, 1.0)
            """
        )
        assert rule_ids(findings) == ["RNG001"]

    def test_seed_plumbing_classes_allowed(self):
        findings = lint(
            """\
            import numpy as np
            from repro.rng import make_rng

            def stream(seed):
                ss = np.random.SeedSequence(seed)
                return make_rng(ss)
            """
        )
        assert findings == []

    def test_rng_module_itself_exempt(self):
        findings = lint(
            """\
            import numpy as np

            def make_rng(seed=None):
                return np.random.default_rng(seed)
            """,
            path="src/repro/rng.py",
        )
        assert findings == []

    def test_generator_method_calls_allowed(self):
        findings = lint(
            """\
            from repro.rng import make_rng

            def sample(n, rng=None):
                return make_rng(rng).integers(0, 10, size=n)
            """
        )
        assert findings == []


class TestRNG002:
    def test_no_arg_make_rng_flagged(self):
        findings = lint(
            """\
            from repro.rng import make_rng

            def simulate(n):
                gen = make_rng()
                return gen.integers(0, n)
            """
        )
        assert rule_ids(findings) == ["RNG002"]
        assert findings[0].line == 4

    def test_constant_seed_in_public_function_flagged(self):
        findings = lint(
            """\
            from repro.rng import make_rng

            def simulate(n):
                gen = make_rng(42)
                return gen.integers(0, n)
            """
        )
        assert rule_ids(findings) == ["RNG002"]

    def test_threaded_rng_parameter_ok(self):
        findings = lint(
            """\
            from repro.rng import make_rng

            def simulate(n, rng=None):
                gen = make_rng(rng)
                return gen.integers(0, n)
            """
        )
        assert findings == []

    def test_seed_attribute_threading_ok(self):
        findings = lint(
            """\
            from repro.rng import make_rng

            def simulate(config, seed=None):
                gen = make_rng(config.seed if seed is None else seed)
                return gen.integers(0, 10)
            """
        )
        assert findings == []

    def test_nested_closure_sees_enclosing_seed(self):
        findings = lint(
            """\
            from repro.rng import make_rng

            def driver(trials, seed=0):
                def one(i):
                    return make_rng(seed + i).integers(0, 10)
                return [one(i) for i in range(trials)]
            """
        )
        assert findings == []

    def test_skipped_in_test_files(self):
        findings = lint(
            """\
            from repro.rng import make_rng

            def test_something():
                gen = make_rng()
                assert gen is not None
            """,
            path=TEST_PATH,
        )
        assert findings == []


class TestLAY001:
    def test_core_importing_experiments_flagged(self):
        findings = lint(
            "from repro.experiments.tables import Table\n", path=CORE_PATH
        )
        assert rule_ids(findings) == ["LAY001"]
        assert findings[0].line == 1

    def test_core_importing_generators_flagged(self):
        findings = lint(
            "from repro.graphs import generators\n", path=CORE_PATH
        )
        assert rule_ids(findings) == ["LAY001"]

    def test_core_importing_graph_substrate_ok(self):
        findings = lint(
            """\
            from repro.graphs.graph import Graph
            from repro.rng import RngLike, make_rng
            from repro.errors import ProcessError
            """,
            path=CORE_PATH,
        )
        assert findings == []

    def test_experiment_cross_import_flagged(self):
        findings = lint(
            "from repro.experiments.e01_winning_distribution import run\n",
            path="src/repro/experiments/e03_time_scaling.py",
        )
        assert rule_ids(findings) == ["LAY001"]

    def test_experiment_importing_shared_layers_ok(self):
        findings = lint(
            """\
            from repro.analysis.initializers import counts_for_average
            from repro.experiments.tables import ExperimentReport
            from repro.core.fast_complete import run_div_complete
            """,
            path="src/repro/experiments/e03_time_scaling.py",
        )
        assert findings == []

    def test_analysis_importing_core_ok(self):
        findings = lint("from repro.core.engine import run_dynamics\n")
        assert findings == []


class TestCOR001:
    def test_list_default_flagged(self):
        findings = lint(
            """\
            def collect(item, acc=[]):
                acc.append(item)
                return acc
            """
        )
        assert rule_ids(findings) == ["COR001"]
        assert findings[0].line == 1

    def test_dict_and_set_call_defaults_flagged(self):
        findings = lint(
            """\
            def merge(a, cache={}, seen=set()):
                return a
            """
        )
        assert rule_ids(findings) == ["COR001", "COR001"]

    def test_kwonly_mutable_default_flagged(self):
        findings = lint(
            """\
            def merge(a, *, cache={}):
                return a
            """
        )
        assert rule_ids(findings) == ["COR001"]

    def test_none_and_tuple_defaults_ok(self):
        findings = lint(
            """\
            def merge(a, cache=None, shape=(2, 3), name="x"):
                return a
            """
        )
        assert findings == []


class TestTST001:
    def test_bare_float_equality_flagged(self):
        findings = lint(
            """\
            def test_mean():
                assert compute_mean([1, 2]) == 1.5
            """,
            path=TEST_PATH,
        )
        assert rule_ids(findings) == ["TST001"]
        assert findings[0].line == 2

    def test_not_equal_float_flagged(self):
        findings = lint(
            """\
            def test_drift():
                assert drift() != 0.0
            """,
            path=TEST_PATH,
        )
        assert rule_ids(findings) == ["TST001"]

    def test_approx_comparison_ok(self):
        findings = lint(
            """\
            import pytest

            def test_mean():
                assert compute_mean([1, 2]) == pytest.approx(1.5)
            """,
            path=TEST_PATH,
        )
        assert findings == []

    def test_int_equality_ok(self):
        findings = lint(
            """\
            def test_count():
                assert count() == 3
            """,
            path=TEST_PATH,
        )
        assert findings == []

    def test_only_applies_to_tests(self):
        findings = lint("GOLDEN = 1.0\nOK = GOLDEN == 1.0\n", path=SRC_PATH)
        assert findings == []

    def test_float_inequality_comparisons_ok(self):
        findings = lint(
            """\
            def test_bound():
                assert error() <= 0.5
            """,
            path=TEST_PATH,
        )
        assert findings == []


class TestOBS001:
    def test_print_in_library_module_flagged(self):
        findings = lint(
            """\
            def report(value):
                print(value)
            """
        )
        assert rule_ids(findings) == ["OBS001"]
        assert findings[0].line == 2
        assert "bare print()" in findings[0].message

    def test_cli_module_exempt(self):
        findings = lint(
            "print('report')\n", path="src/repro/cli.py"
        )
        assert findings == []

    def test_reporters_module_exempt(self):
        findings = lint(
            "print('finding')\n", path="src/repro/devtools/reporters.py"
        )
        assert findings == []

    def test_test_files_exempt(self):
        findings = lint("print('debug')\n", path=TEST_PATH)
        assert findings == []

    def test_files_outside_repro_exempt(self):
        findings = lint("print('bench result')\n", path="benchmarks/bench_x.py")
        assert findings == []

    def test_shadowed_print_attribute_not_flagged(self):
        findings = lint(
            """\
            def emit(logger, value):
                logger.print(value)
            """
        )
        assert findings == []


class TestOBS002:
    OBS_PATH = "src/repro/obs/example.py"

    def test_raw_write_open_in_obs_flagged(self):
        findings = lint(
            """\
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            path=self.OBS_PATH,
        )
        assert rule_ids(findings) == ["OBS002"]
        assert findings[0].line == 2
        assert "raw open" in findings[0].message

    def test_append_mode_keyword_flagged(self):
        findings = lint(
            """\
            def append(path, line):
                handle = open(path, mode="a")
                handle.write(line)
            """,
            path=self.OBS_PATH,
        )
        assert rule_ids(findings) == ["OBS002"]

    def test_write_text_in_obs_flagged(self):
        findings = lint(
            """\
            def dump(path, text):
                path.write_text(text)
            """,
            path=self.OBS_PATH,
        )
        assert rule_ids(findings) == ["OBS002"]
        assert "write_text" in findings[0].message

    def test_read_only_open_ok(self):
        findings = lint(
            """\
            def load(path):
                with open(path) as handle:
                    return handle.read()
            """,
            path=self.OBS_PATH,
        )
        assert findings == []

    def test_io_helpers_ok(self):
        findings = lint(
            """\
            def emit(path, record):
                from repro.io import append_jsonl_line

                append_jsonl_line(path, record)
            """,
            path=self.OBS_PATH,
        )
        assert findings == []

    def test_non_obs_module_exempt(self):
        findings = lint(
            """\
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """
        )
        assert findings == []


class TestKER001:
    EXPERIMENT_PATH = "src/repro/experiments/e01_winning_distribution.py"
    BASELINE_PATH = "src/repro/baselines/pull.py"

    def test_hard_coded_kernel_in_experiment_flagged(self):
        findings = lint(
            """\
            def run(config, seed=0):
                return run_dynamics(graph, opinions, dynamics, kernel="block")
            """,
            path=self.EXPERIMENT_PATH,
        )
        assert rule_ids(findings) == ["KER001"]
        assert findings[0].line == 2
        assert "kernel='block'" in findings[0].message

    def test_hard_coded_loop_kernel_in_baseline_flagged(self):
        findings = lint(
            """\
            def run_pull_voting(graph, opinions):
                return run_baseline(graph, opinions, kernel="loop")
            """,
            path=self.BASELINE_PATH,
        )
        assert rule_ids(findings) == ["KER001"]

    def test_auto_kernel_allowed(self):
        findings = lint(
            """\
            def run(config, seed=0):
                return run_dynamics(graph, opinions, dynamics, kernel="auto")
            """,
            path=self.EXPERIMENT_PATH,
        )
        assert findings == []

    def test_threaded_kernel_parameter_allowed(self):
        findings = lint(
            """\
            def run(config, seed=0, kernel="auto"):
                return run_dynamics(graph, opinions, dynamics, kernel=kernel)
            """,
            path=self.EXPERIMENT_PATH,
        )
        assert findings == []

    def test_other_layers_exempt(self):
        findings = lint(
            """\
            def compare():
                return run_dynamics(graph, opinions, dynamics, kernel="block")
            """,
            path=SRC_PATH,
        )
        assert findings == []

    def test_test_files_exempt(self):
        findings = lint(
            """\
            def test_block():
                assert run(kernel="block").steps >= 0
            """,
            path="src/repro/experiments/test_example.py",
        )
        assert findings == []


class TestSuppressions:
    BAD_LINE = "import numpy as np\nx = np.random.rand(3)"

    def test_line_suppression(self):
        src = "import numpy as np\nx = np.random.rand(3)  # lint: disable=RNG001\n"
        assert lint_source(src, path=SRC_PATH) == []

    def test_line_suppression_all_rules(self):
        src = "import numpy as np\nx = np.random.rand(3)  # lint: disable\n"
        assert lint_source(src, path=SRC_PATH) == []

    def test_line_suppression_wrong_rule_keeps_finding(self):
        src = "import numpy as np\nx = np.random.rand(3)  # lint: disable=TST001\n"
        assert rule_ids(lint_source(src, path=SRC_PATH)) == ["RNG001"]

    def test_file_suppression(self):
        src = (
            "# lint: disable-file=RNG001\n"
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
            "y = np.random.rand(3)\n"
        )
        assert lint_source(src, path=SRC_PATH) == []

    def test_marker_inside_string_is_not_a_suppression(self):
        src = (
            "import numpy as np\n"
            'MSG = "# lint: disable=RNG001"\n'
            "x = np.random.rand(3)\n"
        )
        assert rule_ids(lint_source(src, path=SRC_PATH)) == ["RNG001"]

    def test_parse_suppressions_index(self):
        index = parse_suppressions(
            "x = 1  # lint: disable=RNG001,TST001\n# lint: disable-file=COR001\n"
        )
        assert index.by_line[1] == {"RNG001", "TST001"}
        assert index.file_level == {"COR001"}


class TestReporters:
    def _findings(self):
        return lint(
            """\
            import numpy as np
            x = np.random.rand(3)
            """
        )

    def test_json_schema(self):
        findings = self._findings()
        payload = json.loads(render_json(findings, checked_files=1))
        assert payload["version"] == devtools.JSON_SCHEMA_VERSION
        assert payload["checked_files"] == 1
        assert payload["summary"] == {
            "total": 1,
            "errors": 1,
            "warnings": 0,
            "files": 1,
        }
        (entry,) = payload["findings"]
        assert set(entry) == {
            "rule",
            "severity",
            "path",
            "line",
            "col",
            "message",
            "suggestion",
        }
        assert entry["rule"] == "RNG001"
        assert entry["severity"] == "error"
        assert entry["line"] == 2

    def test_json_clean_run(self):
        payload = json.loads(render_json([], checked_files=7))
        assert payload["findings"] == []
        assert payload["summary"]["total"] == 0

    def test_text_report_mentions_location_and_rule(self):
        text = render_text(self._findings())
        assert f"{SRC_PATH}:2" in text
        assert "RNG001" in text
        assert "1 finding(s)" in text

    def test_text_clean_report(self):
        assert "clean" in render_text([], checked_files=3)


class TestRunnerAndModel:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def broken(:\n", path=SRC_PATH)
        assert rule_ids(findings) == [devtools.PARSE_ERROR_RULE]
        assert findings[0].severity is Severity.ERROR

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1\n", rule_ids=["NOPE"])

    def test_rule_filter(self):
        src = (
            "import numpy as np\n"
            "def f(a=[]):\n"
            "    return np.random.rand(3)\n"
        )
        only_cor = lint_source(src, path=SRC_PATH, rule_ids=["COR001"])
        assert rule_ids(only_cor) == ["COR001"]

    def test_finding_sorting_and_location(self):
        finding = Finding("RNG001", Severity.ERROR, "a.py", 3, 1, "m")
        assert finding.location == "a.py:3:1"
        assert finding.to_dict()["suggestion"] is None

    def test_iter_python_files_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "ok.cpython-39.py").write_text("")
        (tmp_path / "pkg.egg-info").mkdir()
        (tmp_path / "pkg.egg-info" / "bad.py").write_text("x = 1\n")
        files = devtools.iter_python_files([tmp_path])
        assert [f.name for f in files] == ["ok.py"]

    def test_lint_paths_over_directory(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(2)\n")
        run = lint_paths([tmp_path])
        assert run.checked_files == 1
        assert run.has_errors
        assert not run
        assert rule_ids(run.findings) == ["RNG001"]


class TestSelfCheck:
    def test_repo_source_is_lint_clean(self):
        import repro

        src_root = Path(repro.__file__).parent
        run = lint_paths([src_root])
        assert run.checked_files > 50
        assert run.findings == [], devtools.render_text(run.findings)


class TestCli:
    def test_cli_lint_reports_and_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(2)\n")
        # Project mode is the default, so the flow-aware DET002 (which
        # supersedes the per-file RNG001) reports the global-state draw.
        assert cli_main(["lint", "--no-cache", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out

    def test_cli_lint_no_project_restores_per_file_rules(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(2)\n")
        assert cli_main(["lint", "--no-project", str(bad)]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_cli_lint_clean_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert cli_main(["lint", "--no-cache", str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_lint_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n")
        assert cli_main(
            ["lint", "--no-cache", "--format", "json", str(bad)]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "COR001"

    def test_cli_rule_selection(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\ndef f(a=[]):\n    return np.random.rand(2)\n")
        assert cli_main(
            ["lint", "--no-cache", "--rules", "COR001", str(bad)]
        ) == 1
        payload_out = capsys.readouterr().out
        assert "COR001" in payload_out
        assert "RNG001" not in payload_out

    def test_cli_unknown_rule_exits_2(self, tmp_path, capsys):
        assert cli_main(["lint", "--rules", "NOPE", str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RNG001", "RNG002", "LAY001", "COR001", "TST001"):
            assert rule_id in out
