"""Distributed averaging of sensor readings: gossip vs load balancing vs DIV.

A mesh of temperature sensors (a connected G(n, p) radio graph) must
agree on the average of their readings. Three protocols, ordered by how
much machinery they assume:

* **continuous gossip** (Boyd et al.) — a random link's endpoints both
  take the exact real-valued average. Needs floating-point state and a
  coordinated two-node update; converges to the exact average.
* **load balancing** ([5]) — same coordination, but integer state:
  endpoints take the floor/ceil of their average. Conserves the sum
  exactly but leaves a mixture of 2-3 adjacent values.
* **DIV** (this paper) — integer state and a *one-sided* update: one
  node nudges its reading one unit toward a random neighbour's. Ends
  with every node holding the *same* value, the rounded initial average.

Run with::

    python examples/sensor_average.py
"""

import math

import numpy as np

from repro.baselines import run_continuous_gossip, run_load_balancing
from repro.core import run_div
from repro.graphs import gnp_random_graph
from repro.rng import make_rng

SENSORS = 250
LINK_PROBABILITY = 0.08  # expected degree 20
READING_RANGE = (15, 35)  # degrees Celsius


def main(seed: int = 1) -> None:
    mesh = gnp_random_graph(
        SENSORS, LINK_PROBABILITY, rng=0, require_connected=True
    )
    rng = make_rng(seed)
    readings = rng.integers(READING_RANGE[0], READING_RANGE[1] + 1, size=SENSORS)
    true_average = float(np.mean(readings))
    print(f"mesh: {mesh.n} sensors, {mesh.m} links")
    print(f"true average reading: {true_average:.3f} °C "
          f"(floor {math.floor(true_average)}, ceil {math.ceil(true_average)})")

    gossip = run_continuous_gossip(mesh, readings.astype(float), tolerance=0.01, rng=4)
    print("\ncontinuous gossip (real-valued, coordinated):")
    print(f"  steps: {gossip.steps}")
    print(f"  all sensors within 0.01 of {gossip.final_mean:.3f} °C "
          f"(exact average, but needs float state)")

    lb = run_load_balancing(mesh, readings, rng=2)
    print("\nload balancing (coordinated pairwise averaging):")
    print(f"  steps: {lb.steps}")
    print(f"  final values: {lb.final_support} "
          f"(cannot collapse to one value; sum conserved exactly: "
          f"{lb.state.total_sum == int(readings.sum())})")

    div = run_div(mesh, readings, process="edge", rng=3)
    error = abs(div.winner - true_average)
    print("\ndiscrete incremental voting (one-sided updates):")
    print(f"  steps to two adjacent values: {div.two_adjacent_step}")
    print(f"  steps to full consensus:      {div.steps}")
    print(f"  unanimous value: {div.winner} °C (|error| = {error:.3f}, "
          f"within rounding: {error < 1.0})")


if __name__ == "__main__":
    main()
