"""Mode, Median, Mean: three dynamics, three statistics.

The paper observes that pull voting, median voting and DIV mirror the
mode, the median and the mean of the initial opinions. This demo runs
all three on the *same* skewed opinion sample on a complete graph and
tabulates where each dynamic's winners land.

Run with::

    python examples/mode_median_mean.py
"""

from collections import Counter

import numpy as np

from repro.analysis import run_trials, skewed_opinions
from repro.analysis.statistics import median_of, mode_of
from repro.baselines import run_median_voting, run_pull_voting
from repro.core import run_div
from repro.graphs import complete_graph

N, K, TRIALS = 200, 7, 40


def main() -> None:
    graph = complete_graph(N)
    opinions = skewed_opinions(N, K, rng=0)
    mode = mode_of(opinions.tolist())
    median = median_of(opinions.tolist())
    mean = float(np.mean(opinions))
    counts = Counter(opinions.tolist())
    print(f"initial opinions on K_{N} (skewed):",
          dict(sorted(counts.items())))
    print(f"mode = {mode}, median = {median:g}, mean = {mean:.3f}\n")

    dynamics = {
        "pull voting   (mode)": lambda i, rng: run_pull_voting(
            graph, opinions, rng=rng).winner,
        "median voting (median)": lambda i, rng: run_median_voting(
            graph, opinions, rng=rng, max_steps=5_000_000).winner,
        "DIV           (mean)": lambda i, rng: run_div(
            graph, opinions, rng=rng).winner,
    }
    print(f"winner distribution over {TRIALS} runs each:")
    values = list(range(1, K + 1))
    header = "  ".join(f"{v:>5}" for v in values)
    print(f"{'dynamic':24}  {header}   mean winner")
    for name, trial in dynamics.items():
        winners = run_trials(TRIALS, trial, seed=1).outcomes
        histogram = Counter(winners)
        row = "  ".join(f"{histogram.get(v, 0) / TRIALS:>5.2f}" for v in values)
        print(f"{name:24}  {row}   {np.mean(winners):.2f}")

    print("\npull voting's winners track the initial distribution (modal"
          "\nvalue most likely); median voting concentrates on the median;"
          "\nDIV concentrates on floor/ceil of the mean.")


if __name__ == "__main__":
    main()
