"""Opinion survey on a social network — the paper's motivating scenario.

Each person in a 16-regular "acquaintance" network holds a Likert-scale
opinion from 1 ('disagree strongly') to 5 ('agree strongly'). People
never copy each other outright (that would be pull voting); instead,
after hearing a random acquaintance, they shift their own opinion one
notch toward what they heard — discrete incremental voting.

The demo shows:

* the stage evolution of the set of opinions present in the population
  (extremes are eliminated one at a time, exactly as in the paper's
  worked example);
* that the final unanimous opinion is the rounded *average* of the
  initial survey, repeated over many independent evolutions.

Run with::

    python examples/opinion_survey.py
"""

import numpy as np

from repro.analysis import run_trials
from repro.core import StageRecorder, run_div
from repro.core.theory import winning_probabilities
from repro.graphs import random_regular_graph
from repro.rng import make_rng

POPULATION = 400
ACQUAINTANCES = 16
LIKERT = {1: "disagree strongly", 2: "disagree", 3: "neutral",
          4: "agree", 5: "agree strongly"}


def main(seed: int = 1) -> None:
    network = random_regular_graph(POPULATION, ACQUAINTANCES, rng=0)
    rng = make_rng(seed)
    # A polarized survey: many strong disagreers, a block of enthusiasts.
    survey = rng.choice([1, 2, 4, 5], size=POPULATION, p=[0.35, 0.2, 0.15, 0.3])
    c = float(np.mean(survey))

    print(f"population {POPULATION}, {ACQUAINTANCES} acquaintances each")
    histogram = {i: int(np.sum(survey == i)) for i in sorted(LIKERT)}
    print("initial survey:", {LIKERT[i]: n for i, n in histogram.items() if n})
    print(f"average sentiment c = {c:.3f}")

    recorder = StageRecorder()
    result = run_div(network, survey, process="vertex", rng=2, observers=[recorder])
    trajectory = " -> ".join(
        "{" + ",".join(map(str, stage.support)) + "}" for stage in recorder.stages
    )
    print(f"\none evolution of the opinions present:\n  {trajectory}")
    print(f"consensus: {result.winner} ({LIKERT[result.winner]}) "
          f"after {result.steps} conversations")

    prediction = winning_probabilities(c)
    trials = 60
    outcomes = run_trials(
        trials,
        lambda i, t_rng: run_div(network, survey, process="vertex", rng=t_rng).winner,
        seed=3,
    )
    print(f"\nover {trials} independent evolutions of the same survey:")
    for opinion in sorted(set(outcomes.outcomes)):
        share = outcomes.frequency(lambda w, o=opinion: w == o)
        print(f"  consensus {opinion} ({LIKERT[opinion]}): {share:.2f} "
              f"(Theorem 2 predicts {prediction.probability_of(opinion):.2f})")


if __name__ == "__main__":
    main()
