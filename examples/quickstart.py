"""Quickstart: one DIV run and Theorem 2's prediction.

Run with::

    python examples/quickstart.py
"""

from repro import complete_graph, run_div, uniform_random_opinions
from repro.core.theory import winning_probabilities


def main() -> None:
    graph = complete_graph(300)
    opinions = uniform_random_opinions(graph.n, k=5, rng=1)

    result = run_div(graph, opinions, process="vertex", rng=2)

    prediction = winning_probabilities(result.initial_mean)
    print(f"graph: {graph.name} ({graph.n} vertices, {graph.m} edges)")
    print(f"initial average opinion c = {result.initial_mean:.3f}")
    print(
        f"Theorem 2 predicts the winner is {prediction.floor} "
        f"w.p. {prediction.p_floor:.2f} or {prediction.ceil} "
        f"w.p. {prediction.p_ceil:.2f}"
    )
    print(f"winner: {result.winner}")
    print(
        f"steps to consensus: {result.steps} "
        f"(two adjacent opinions from step {result.two_adjacent_step})"
    )


if __name__ == "__main__":
    main()
