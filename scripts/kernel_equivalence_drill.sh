#!/usr/bin/env bash
# Kernel-equivalence drill: the same experiment must produce
# byte-identical reports under every execution kernel.
#
# Runs E1 (--quick) once per backend — loop, block, compiled — and
# byte-compares the JSON reports pairwise against the loop reference.
# Then repeats the comparison for the non-static substrate scenarios:
# E17 (zealots: frozen vertices through every commit path) and E18
# (edge churn: epoch-crossing runs with scheduler cache rebuilds) —
# the kernel contract must hold on dynamic substrates too, not just
# static graphs. The compiled leg only measures something when its jit
# runtime (numba) is importable; without it the spec would silently
# resolve to block and the comparison would be vacuous, so it is
# skipped with a notice instead.
#
# Usage: scripts/kernel_equivalence_drill.sh [WORK_DIR]   (default: mktemp)
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORK=${1:-$(mktemp -d)}
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

say() { echo "[kernel-drill] $*"; }

KERNELS="loop block"
if python -c "import sys; from repro.core.kernels import NUMBA_AVAILABLE; sys.exit(0 if NUMBA_AVAILABLE else 1)"; then
    KERNELS="$KERNELS compiled"
else
    say "numba not installed - compiled leg skipped (would resolve to block)"
fi

# E1: the static-substrate reference comparison. E17/E18: zealots and
# edge churn — the scenario legs added with the substrate contract.
EXPERIMENTS="E1 E17 E18"

for experiment in $EXPERIMENTS; do
    for kernel in $KERNELS; do
        say "running $experiment --quick under kernel=$kernel"
        python -m repro.cli run "$experiment" --quick --seed 7 \
            --kernel "$kernel" --json "$WORK/$kernel"
    done
done

for experiment in $EXPERIMENTS; do
    name=$(echo "$experiment" | tr '[:upper:]' '[:lower:]')
    for kernel in $KERNELS; do
        [ "$kernel" = loop ] && continue
        cmp "$WORK/loop/$name.json" "$WORK/$kernel/$name.json"
        say "$experiment: loop and $kernel reports are byte-identical"
    done
done

say "OK: kernels agree on $EXPERIMENTS ($KERNELS)"
