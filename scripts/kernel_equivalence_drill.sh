#!/usr/bin/env bash
# Kernel-equivalence drill: the same experiment must produce
# byte-identical reports under every execution kernel.
#
# Runs E1 (--quick) once per backend — loop, block, compiled — and
# byte-compares the JSON reports pairwise against the loop reference.
# The compiled leg only measures something when its jit runtime (numba)
# is importable; without it the spec would silently resolve to block
# and the comparison would be vacuous, so it is skipped with a notice
# instead.
#
# Usage: scripts/kernel_equivalence_drill.sh [WORK_DIR]   (default: mktemp)
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORK=${1:-$(mktemp -d)}
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

say() { echo "[kernel-drill] $*"; }

KERNELS="loop block"
if python -c "import sys; from repro.core.kernels import NUMBA_AVAILABLE; sys.exit(0 if NUMBA_AVAILABLE else 1)"; then
    KERNELS="$KERNELS compiled"
else
    say "numba not installed - compiled leg skipped (would resolve to block)"
fi

for kernel in $KERNELS; do
    say "running E1 --quick under kernel=$kernel"
    python -m repro.cli run E1 --quick --seed 7 --kernel "$kernel" \
        --json "$WORK/$kernel"
done

for kernel in $KERNELS; do
    [ "$kernel" = loop ] && continue
    cmp "$WORK/loop/e1.json" "$WORK/$kernel/e1.json"
    say "loop and $kernel reports are byte-identical"
done

say "OK: kernels agree ($KERNELS)"
