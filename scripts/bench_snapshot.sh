#!/usr/bin/env bash
# Consolidated machine-readable benchmark snapshot (run by CI, runnable locally).
#
# Runs the benchmark suite with DIV_REPRO_BENCH_JSONL pointed at a scratch
# records file (benchmarks/conftest.py emits one JSON record per benchmark
# through benchmarks/_emit.py), then folds the records into a single
# BENCH_<date>.json in the output directory — one point of the repo's
# benchmark trajectory, stamped with the git sha it measured.
#
# Usage: scripts/bench_snapshot.sh [OUT_DIR]        (default: repo root)
#   BENCH_SELECT="benchmarks/bench_engine_throughput.py ..."  runs a subset
#   BENCH_OUT=BENCH_custom.json                               names the file
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
OUT_DIR=${1:-$ROOT}
OUT_NAME=${BENCH_OUT:-BENCH_$(date -u +%Y%m%d).json}
SELECT=${BENCH_SELECT:-benchmarks}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

say() { echo "[bench-snapshot] $*"; }

export DIV_REPRO_BENCH_JSONL="$WORK/records.jsonl"

say "running: pytest $SELECT"
(cd "$ROOT" && PYTHONPATH=src python -m pytest $SELECT)

if [ ! -s "$DIV_REPRO_BENCH_JSONL" ]; then
    say "FAIL: no benchmark records were emitted"
    exit 1
fi

mkdir -p "$OUT_DIR"
(cd "$ROOT" && python benchmarks/_emit.py consolidate \
    "$DIV_REPRO_BENCH_JSONL" "$OUT_DIR/$OUT_NAME")
say "snapshot written to $OUT_DIR/$OUT_NAME"
