#!/usr/bin/env bash
# Observability drill for the repro.obs layer (run by CI, runnable locally).
#
# Proves the tracing acceptance criteria end to end:
#   1. a traced quick campaign writes a JSONL trace that `div-repro trace
#      summarize` renders (the summarizer itself validates that every
#      engine span's per-phase steps sum to the span's total steps);
#   2. the metrics snapshot and the trace agree on the work done
#      (engine.runs == engine spans, engine.steps == total steps);
#   3. the trace's phase-transition counts are consistent with the final
#      E10 report: support-*size* transitions are a subset of the
#      support-*set* changes the report counts as stages, so
#      mean(transitions) + 1 <= mean(#stages).
#
# Usage: scripts/trace_drill.sh [OUT_DIR]   (override the CLI with DIV_REPRO=...)
set -euo pipefail

RUN=${DIV_REPRO:-div-repro}
WORK=$(mktemp -d)
OUT=${1:-$WORK/obs}
trap 'rm -rf "$WORK"' EXIT

say() { echo "[trace-drill] $*"; }

say "traced quick campaign: E10 --quick --seed 0"
mkdir -p "$OUT"
$RUN run E10 --quick --seed 0 \
    --trace-dir "$OUT/trace" --metrics-out "$OUT/metrics.json" \
    --json "$OUT/json" > /dev/null

say "rendering the trace summary (validates the per-phase step invariant)"
$RUN trace summarize "$OUT/trace"

say "cross-checking trace vs metrics vs final report"
python - "$OUT" <<'EOF'
import json
import sys
from pathlib import Path

from repro.obs import load_trace_dir, summarize_records

out = Path(sys.argv[1])
summary = summarize_records(load_trace_dir(out / "trace"))
metrics = json.loads((out / "metrics.json").read_text(encoding="utf-8"))
report = json.loads((out / "json" / "e10.json").read_text(encoding="utf-8"))

counters = metrics["counters"]
assert counters["engine.runs"] == summary.engine_spans, (
    counters["engine.runs"], summary.engine_spans)
assert counters["engine.steps"] == summary.total_steps, (
    counters["engine.steps"], summary.total_steps)
assert summary.engine_spans == 80, summary.engine_spans  # E10 --quick trials

# Every support-size transition in the trace is also a support-set
# change in the report's stage count, plus the initial stage.
mean_transitions = summary.phase_transitions / summary.engine_spans
mean_stages = float(report["tables"][0]["rows"][0][0])
assert mean_transitions + 1 <= mean_stages + 1e-9, (mean_transitions, mean_stages)
assert summary.phase_transitions > 0

print(f"[trace-drill] OK: {summary.engine_spans} engine spans, "
      f"{summary.total_steps} steps, mean transitions {mean_transitions:.2f} "
      f"<= mean stages {mean_stages:.2f}")
EOF

say "all checks passed (trace kept in $OUT)"
