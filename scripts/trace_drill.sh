#!/usr/bin/env bash
# Observability drill for the repro.obs layer (run by CI, runnable locally).
#
# Proves the tracing acceptance criteria end to end:
#   1. a traced quick campaign writes a JSONL trace that `div-repro trace
#      summarize` renders (the summarizer itself validates that every
#      engine span's per-phase steps sum to the span's total steps);
#   2. the metrics snapshot and the trace agree on the work done
#      (engine.runs == engine spans, engine.steps == total steps);
#   3. the trace's phase-transition counts are consistent with the final
#      E10 report: support-*size* transitions are a subset of the
#      support-*set* changes the report counts as stages, so
#      mean(transitions) + 1 <= mean(#stages);
#   4. two concurrent --telemetry journal launchers leave feeds whose
#      merged timeline reconciles exactly with the checkpoint journal,
#      and `campaign watch --once` / `timeline report` render them;
#   5. `bench compare` passes on a snapshot against itself and catches a
#      seeded >=50% regression with a nonzero exit (the CI perf gate).
#
# Usage: scripts/trace_drill.sh [OUT_DIR]   (override the CLI with DIV_REPRO=...)
set -euo pipefail

RUN=${DIV_REPRO:-div-repro}
ROOT_SNAPSHOTS=$(cd "$(dirname "$0")/.." && pwd)
WORK=$(mktemp -d)
OUT=${1:-$WORK/obs}
trap 'rm -rf "$WORK"' EXIT

say() { echo "[trace-drill] $*"; }

say "traced quick campaign: E10 --quick --seed 0"
mkdir -p "$OUT"
$RUN run E10 --quick --seed 0 \
    --trace-dir "$OUT/trace" --metrics-out "$OUT/metrics.json" \
    --json "$OUT/json" > /dev/null

say "rendering the trace summary (validates the per-phase step invariant)"
$RUN trace summarize "$OUT/trace"

say "cross-checking trace vs metrics vs final report"
python - "$OUT" <<'EOF'
import json
import sys
from pathlib import Path

from repro.obs import load_trace_dir, summarize_records

out = Path(sys.argv[1])
summary = summarize_records(load_trace_dir(out / "trace"))
metrics = json.loads((out / "metrics.json").read_text(encoding="utf-8"))
report = json.loads((out / "json" / "e10.json").read_text(encoding="utf-8"))

counters = metrics["counters"]
assert counters["engine.runs"] == summary.engine_spans, (
    counters["engine.runs"], summary.engine_spans)
assert counters["engine.steps"] == summary.total_steps, (
    counters["engine.steps"], summary.total_steps)
assert summary.engine_spans == 80, summary.engine_spans  # E10 --quick trials

# Every support-size transition in the trace is also a support-set
# change in the report's stage count, plus the initial stage.
mean_transitions = summary.phase_transitions / summary.engine_spans
mean_stages = float(report["tables"][0]["rows"][0][0])
assert mean_transitions + 1 <= mean_stages + 1e-9, (mean_transitions, mean_stages)
assert summary.phase_transitions > 0

print(f"[trace-drill] OK: {summary.engine_spans} engine spans, "
      f"{summary.total_steps} steps, mean transitions {mean_transitions:.2f} "
      f"<= mean stages {mean_stages:.2f}")
EOF

# ------------------------------------------------------- telemetry drill
say "telemetry drill: two concurrent --telemetry launchers on one campaign"
$RUN run E10 --quick --seed 0 --workers 2 \
    --checkpoint-dir "$WORK/ckpt" --resume \
    --executor journal --lease-ttl 2 --telemetry \
    > /dev/null 2>&1 &
LAUNCHER_A=$!
$RUN run E10 --quick --seed 0 --workers 2 \
    --checkpoint-dir "$WORK/ckpt" --resume \
    --executor journal --lease-ttl 2 --telemetry \
    > /dev/null 2>&1 &
LAUNCHER_B=$!
wait "$LAUNCHER_A"
wait "$LAUNCHER_B"

say "rendering the live view and the post-hoc report"
$RUN campaign watch "$WORK/ckpt" --once
$RUN timeline report "$WORK/ckpt/e10" --bin 1 > /dev/null

say "reconciling the merged timeline against the checkpoint journal"
python - "$WORK/ckpt/e10" <<'EOF'
import sys
from pathlib import Path

from repro.checkpoint import CheckpointJournal
from repro.obs import load_timeline

campaign_dir = Path(sys.argv[1])
timeline = load_timeline(campaign_dir)
journaled = sum(1 for _ in CheckpointJournal(campaign_dir).iter_records())

assert len(timeline.launchers) == 2, sorted(timeline.launchers)
assert all(l.closed for l in timeline.launchers.values()), "unclosed feed"
assert journaled == 80, journaled  # E10 --quick trials
# Journal truth and telemetry truth must agree exactly: every journaled
# trial appears exactly once as timeline progress; steal/peer double
# work only ever shows up as contention, never as progress.
assert timeline.completed == journaled, (timeline.completed, journaled)
assert timeline.total == journaled, (timeline.total, journaled)
assert timeline.executed >= timeline.completed - timeline.duplicates

print(f"[trace-drill] OK: {len(timeline.launchers)} launchers, "
      f"{timeline.completed}/{timeline.total} trials reconciled, "
      f"{timeline.duplicates} duplicate(s), {timeline.torn_lines} torn line(s)")
EOF

# ------------------------------------------------------ bench-compare gate
say "bench-compare self-test: identity must pass, seeded regression must fail"
SNAPSHOT=$(ls "$ROOT_SNAPSHOTS"/BENCH_*.json 2>/dev/null | head -1 || true)
if [ -z "$SNAPSHOT" ]; then
    say "FAIL: no committed BENCH_*.json snapshot to gate against"
    exit 1
fi
$RUN bench compare "$SNAPSHOT" "$SNAPSHOT" > /dev/null
say "OK: snapshot compares clean against itself"
python - "$SNAPSHOT" "$WORK/regressed.json" <<'EOF'
import json, sys

with open(sys.argv[1], encoding="utf-8") as handle:
    snapshot = json.load(handle)
snapshot["benchmarks"][0]["mean_seconds"] *= 1.5  # seeded 50% regression
with open(sys.argv[2], "w", encoding="utf-8") as handle:
    json.dump(snapshot, handle)
EOF
if $RUN bench compare "$SNAPSHOT" "$WORK/regressed.json" > /dev/null; then
    say "FAIL: bench compare accepted a seeded 50% regression"
    exit 1
fi
say "OK: seeded regression caught with a nonzero exit"

say "all checks passed (trace kept in $OUT)"
