#!/usr/bin/env bash
# Lint drill for the static-analysis engine (run by CI, runnable locally).
#
# The linter gating CI is only trustworthy if CI also proves the linter
# still *catches* things — a regression that silences an analyzer family
# would otherwise pass every gate.  The drill seeds contract violations
# in a scratch tree and asserts each one is reported:
#   1. determinism-flow — an unseeded default_rng() (DET001) and a
#      global-state np.random draw (DET002);
#   2. correctness — a mutable default argument (COR001);
#   3. concurrency — a lambda trial shipped to a worker pool (PAR003);
# then checks a clean file passes, and that a suppression comment
# against the *superseded* per-file rule id still silences its
# flow-aware successor (the aliasing contract).
#
# Usage: scripts/lint_drill.sh   (override the CLI with DIV_REPRO=...)
set -euo pipefail

RUN=${DIV_REPRO:-div-repro}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

say() { echo "[lint-drill] $*"; }

expect_rule() { # expect_rule <rule-id> <output-file>
    if ! grep -q "$1" "$2"; then
        say "FAIL: expected $1 in lint output:"
        cat "$2"
        exit 1
    fi
    say "caught $1"
}

# ------------------------------------------------------- seeded violations
cat > "$WORK/seeded.py" <<'PY'
import numpy as np

from repro.analysis import run_trials


def unseeded():
    return np.random.default_rng()


def global_state():
    return np.random.rand(3)


def mutable_default(acc=[]):
    return acc


def unpicklable():
    return run_trials(8, lambda i, rng: 0.0, workers=4)
PY

say "linting a tree with seeded contract violations (must exit non-zero)"
if $RUN lint --no-cache "$WORK" > "$WORK/out.txt"; then
    say "FAIL: linter exited zero on seeded violations"
    cat "$WORK/out.txt"
    exit 1
fi
expect_rule DET001 "$WORK/out.txt"
expect_rule DET002 "$WORK/out.txt"
expect_rule COR001 "$WORK/out.txt"
expect_rule PAR003 "$WORK/out.txt"

# ------------------------------------------------------------- clean tree
rm "$WORK/seeded.py"
cat > "$WORK/clean.py" <<'PY'
from repro.rng import make_rng


def sample(seed=0):
    rng = make_rng(seed)
    return rng.random()
PY

say "linting a clean tree (must exit zero)"
$RUN lint --no-cache "$WORK" > "$WORK/out.txt"
say "clean tree passes"

# ------------------------------------------------- suppression aliasing
cat > "$WORK/suppressed.py" <<'PY'
import numpy as np


def draw():
    return np.random.rand(3)  # lint: disable=RNG001
PY

say "comment against superseded RNG001 must silence DET002"
$RUN lint --no-cache "$WORK" > "$WORK/out.txt"
say "aliased suppression honoured"

say "PASS: all seeded violations caught, clean tree and aliasing intact"
