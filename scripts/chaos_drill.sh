#!/usr/bin/env bash
# Chaos drill for the checkpoint/resume layer (run by CI, runnable locally).
#
# Proves the robustness acceptance criteria end to end:
#   1. kill-and-resume — a campaign SIGKILLed mid-run and resumed from its
#      checkpoint directory produces a report byte-identical to an
#      uninterrupted serial run, and a journal bit-identical to the
#      uninterrupted run's journal;
#   2. fault drill — the same equality holds for a parallel campaign with
#      injected worker crashes and chunk timeouts (crash@I:1 / hang@I:1);
#   3. corruption drill — a corrupted checkpoint record aborts the resume
#      with a one-line error (exit 2), and --discard-corrupt recovers to
#      the identical report;
#   4. journal-executor drill — two concurrent launchers with injected
#      lease faults (steal/abort on one, stale/partial on the other)
#      cooperatively drain one campaign to a journal bit-identical to
#      the serial reference, and `campaign status` reads the directory.
#
# Usage: scripts/chaos_drill.sh   (override the CLI with DIV_REPRO=...)
set -euo pipefail

RUN=${DIV_REPRO:-div-repro}
EXPERIMENT=E1
EXPERIMENT_LOWER=$(echo "$EXPERIMENT" | tr '[:upper:]' '[:lower:]')
SEED=7
TOTAL_TRIALS=360   # E1 --quick: 3 fractions x 120 trials
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

say() { echo "[chaos-drill] $*"; }

# ---------------------------------------------------------------- reference
say "reference: uninterrupted serial run"
$RUN run "$EXPERIMENT" --quick --seed "$SEED" \
    --checkpoint-dir "$WORK/ckpt-ref" --json "$WORK/ref" > /dev/null

# ---------------------------------------------------------- kill-and-resume
say "kill-and-resume: starting campaign, will SIGKILL mid-run"
$RUN run "$EXPERIMENT" --quick --seed "$SEED" \
    --checkpoint-dir "$WORK/ckpt-kill" --json "$WORK/out-kill" \
    > /dev/null 2>&1 &
VICTIM=$!
# Wait until some trials are journaled, then kill before the campaign ends.
for _ in $(seq 1 2000); do
    COUNT=$( (find "$WORK/ckpt-kill" -name 't*.rec' 2>/dev/null || true) | wc -l)
    if [ "$COUNT" -ge 10 ]; then break; fi
    sleep 0.01
done
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
COUNT=$(find "$WORK/ckpt-kill" -name 't*.rec' | wc -l)
say "SIGKILL delivered with $COUNT/$TOTAL_TRIALS trials journaled"
if [ "$COUNT" -ge "$TOTAL_TRIALS" ] || [ -f "$WORK/out-kill/$EXPERIMENT_LOWER.json" ]; then
    say "FAIL: campaign finished before the kill landed; drill proved nothing"
    exit 1
fi

say "resuming the killed campaign"
$RUN run "$EXPERIMENT" --quick --seed "$SEED" \
    --checkpoint-dir "$WORK/ckpt-kill" --resume --json "$WORK/out-kill" > /dev/null
cmp "$WORK/ref/$EXPERIMENT_LOWER.json" "$WORK/out-kill/$EXPERIMENT_LOWER.json"
say "OK: resumed report is byte-identical to the uninterrupted run"
$RUN checkpoint diff "$WORK/ckpt-ref/$EXPERIMENT_LOWER" "$WORK/ckpt-kill/$EXPERIMENT_LOWER" > /dev/null
say "OK: resumed journal is bit-identical to the uninterrupted journal"

# ------------------------------------------------- crash + timeout faults
say "fault drill: workers=2 with injected crash + hang faults"
$RUN run "$EXPERIMENT" --quick --seed "$SEED" --workers 2 \
    --checkpoint-dir "$WORK/ckpt-faults" --json "$WORK/out-faults" \
    --inject-faults 'crash@3:1;hang@17:1' --trial-timeout 4 --max-retries 2 \
    > /dev/null 2>&1
$RUN checkpoint diff "$WORK/ckpt-ref/$EXPERIMENT_LOWER" "$WORK/ckpt-faults/$EXPERIMENT_LOWER" > /dev/null
say "OK: faulted parallel journal is bit-identical to the serial journal"
# Reports agree modulo the parallel run's timing note.
python - "$WORK/ref/$EXPERIMENT_LOWER.json" "$WORK/out-faults/$EXPERIMENT_LOWER.json" <<'EOF'
import json, sys

def load(path):
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    for table in report["tables"]:
        table["notes"] = [
            n for n in table["notes"] if not n.startswith("trial execution:")
        ]
    return report

left, right = load(sys.argv[1]), load(sys.argv[2])
assert left == right, "faulted parallel report diverged from serial report"
EOF
say "OK: faulted parallel report matches the serial report"

# ------------------------------------------------------- corruption drill
say "corruption drill: damaging one checkpoint record"
cp -r "$WORK/ckpt-kill" "$WORK/ckpt-corrupt"
VICTIM_RECORD=$(find "$WORK/ckpt-corrupt" -name 't5.rec' | head -n 1)
printf 'garbage' > "$VICTIM_RECORD"
if $RUN run "$EXPERIMENT" --quick --seed "$SEED" \
    --checkpoint-dir "$WORK/ckpt-corrupt" --resume > /dev/null 2> "$WORK/corrupt-err"; then
    say "FAIL: resume accepted a corrupt record"
    exit 1
fi
grep -q "div-repro: error:" "$WORK/corrupt-err"
say "OK: corrupt record aborted the resume with a one-line error"
$RUN run "$EXPERIMENT" --quick --seed "$SEED" \
    --checkpoint-dir "$WORK/ckpt-corrupt" --resume --discard-corrupt \
    --json "$WORK/out-corrupt" > /dev/null
cmp "$WORK/ref/$EXPERIMENT_LOWER.json" "$WORK/out-corrupt/$EXPERIMENT_LOWER.json"
say "OK: --discard-corrupt re-ran the damaged trial to an identical report"

# ------------------------------------------------ journal-executor drill
say "journal drill: two concurrent launchers with injected lease faults"
# Launcher A aborts after a forced steal; its leftover lease goes stale
# and launcher B (or a resumed A) reclaims the chunk. B also exercises
# the stale-heartbeat and torn-write paths. Either launcher alone can
# drain the campaign, so the drill tolerates A dying by design.
$RUN run "$EXPERIMENT" --quick --seed "$SEED" --workers 2 \
    --checkpoint-dir "$WORK/ckpt-journal" --resume \
    --executor journal --lease-ttl 2 \
    --inject-faults 'lease-steal@5;lease-abort@5' \
    > /dev/null 2>&1 &
LAUNCHER_A=$!
$RUN run "$EXPERIMENT" --quick --seed "$SEED" --workers 2 \
    --checkpoint-dir "$WORK/ckpt-journal" --resume \
    --executor journal --lease-ttl 2 \
    --inject-faults 'lease-stale@95;lease-partial@185' \
    --json "$WORK/out-journal" > /dev/null 2>&1 &
LAUNCHER_B=$!
wait "$LAUNCHER_A" || say "launcher A died from its injected abort (expected)"
wait "$LAUNCHER_B"
$RUN checkpoint diff "$WORK/ckpt-ref/$EXPERIMENT_LOWER" "$WORK/ckpt-journal/$EXPERIMENT_LOWER" > /dev/null
say "OK: cooperatively drained journal is bit-identical to the serial journal"
python - "$WORK/ref/$EXPERIMENT_LOWER.json" "$WORK/out-journal/$EXPERIMENT_LOWER.json" <<'EOF'
import json, sys

def load(path):
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    for table in report["tables"]:
        table["notes"] = [
            n for n in table["notes"] if not n.startswith("trial execution:")
        ]
    return report

left, right = load(sys.argv[1]), load(sys.argv[2])
assert left == right, "journal-executor report diverged from serial report"
EOF
say "OK: journal-executor report matches the serial report"
$RUN campaign status "$WORK/ckpt-journal" > /dev/null
say "OK: campaign status reads the shared checkpoint directory"

say "all drills passed"
